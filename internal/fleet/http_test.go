package fleet_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"occusim/internal/building"
	"occusim/internal/fleet"
	"occusim/internal/transport"
)

// newHTTPFleet spins n bms servers behind httptest and fronts them with
// HTTPShard clients. Returned closers kill individual shard servers.
func newHTTPFleet(t *testing.T, b *building.Building, n int) (*fleet.Gateway, []*httptest.Server) {
	t.Helper()
	shards := make([]fleet.Shard, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		srv := newServer(t, b)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		hs, err := fleet.NewHTTPShard(ts.URL, nil, transport.RetryPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = hs
		servers[i] = ts
	}
	gw, err := fleet.New(shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return gw, servers
}

// TestHTTPShardFleetEndToEnd drives a 3-shard HTTP fleet through model
// distribution, batch ingest and every federated read path, and checks
// the result matches the same stream through an in-process pool — the
// HTTP shard client must be a transparent transport.
func TestHTTPShardFleetEndToEnd(t *testing.T) {
	b := building.PaperHouse()
	snap := trainSnapshot(t, b, 23)
	stream := synthStream(b, 12, 45, 5)

	gw, _ := newHTTPFleet(t, b, 3)
	if err := gw.DistributeModel(snap); err != nil {
		t.Fatal(err)
	}
	httpRooms, err := gw.IngestBatch(stream)
	if err != nil {
		t.Fatal(err)
	}

	pool, err := fleet.NewLocalPool(b, 3, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	// The local pool names shards "shard-N" while HTTP shards are named
	// by URL, so the rings differ — equivalence of the *federated state*
	// must hold regardless, because it never depends on which shard a
	// device landed on.
	local, err := fleet.New(pool.Shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.DistributeModel(snap); err != nil {
		t.Fatal(err)
	}
	localRooms, err := local.IngestBatch(stream)
	if err != nil {
		t.Fatal(err)
	}

	if len(httpRooms) != len(localRooms) {
		t.Fatalf("room counts differ: %d vs %d", len(httpRooms), len(localRooms))
	}
	for i := range httpRooms {
		if httpRooms[i] != localRooms[i] {
			t.Fatalf("report %d: http fleet %q, local fleet %q", i, httpRooms[i], localRooms[i])
		}
	}

	ho, err := gw.Occupancy()
	if err != nil {
		t.Fatal(err)
	}
	lo, err := local.Occupancy()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, ho), mustJSON(t, lo); !bytes.Equal(got, want) {
		t.Fatalf("occupancy over HTTP differs:\n%s\nvs\n%s", got, want)
	}
	he, err := gw.Events()
	if err != nil {
		t.Fatal(err)
	}
	le, err := local.Events()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, he), mustJSON(t, le); !bytes.Equal(got, want) {
		t.Fatalf("events over HTTP differ:\n%s\nvs\n%s", got, want)
	}
	hd, err := gw.DwellTotals()
	if err != nil {
		t.Fatal(err)
	}
	ld, err := local.DwellTotals()
	if err != nil {
		t.Fatal(err)
	}
	// HTTP round-trips dwell through seconds-as-float; compare at
	// millisecond resolution.
	if len(hd) != len(ld) {
		t.Fatalf("dwell rooms differ: %v vs %v", hd, ld)
	}
	for room, want := range ld {
		got := hd[room]
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff.Milliseconds() > 1 {
			t.Fatalf("dwell[%s] = %v over HTTP, want %v", room, got, want)
		}
	}
}

// TestHTTPFleetShardFailureReroutes kills one shard server and checks
// the gateway notices via health probes and keeps ingesting by sliding
// the dead shard's devices to survivors.
func TestHTTPFleetShardFailureReroutes(t *testing.T) {
	b := building.PaperHouse()
	gw, servers := newHTTPFleet(t, b, 3)

	stream := synthStream(b, 10, 5, 11)
	if _, err := gw.IngestBatch(stream); err != nil {
		t.Fatal(err)
	}

	servers[1].Close()
	statuses := gw.CheckHealth()
	downCount := 0
	for _, s := range statuses {
		if s.Down {
			downCount++
		}
	}
	if downCount != 1 || !statuses[1].Down {
		t.Fatalf("health after kill = %+v", statuses)
	}

	// The same crowd keeps reporting; everything must still ingest.
	later := synthStream(b, 10, 5, 11)
	for i := range later {
		later[i].AtSeconds += 100
	}
	if _, err := gw.IngestBatch(later); err != nil {
		t.Fatalf("ingest after shard loss: %v", err)
	}
	for d := 0; d < 10; d++ {
		idx, err := gw.ShardFor(later[d].Device)
		if err != nil {
			t.Fatal(err)
		}
		if idx == 1 {
			t.Fatalf("device %q still routed to the dead shard", later[d].Device)
		}
	}
}

// TestHTTPShardDeviceMigration drives the migration surface over real
// HTTP: evict from one remote shard, install on another, expire by
// TTL — with the 404 of an unknown device mapped to (no state, no
// error), which is what the gateway's rebalance expects.
func TestHTTPShardDeviceMigration(t *testing.T) {
	b := building.PaperHouse()
	srcSrv := newServer(t, b)
	dstSrv := newServer(t, b)
	tsSrc := httptest.NewServer(srcSrv.Handler())
	defer tsSrc.Close()
	tsDst := httptest.NewServer(dstSrv.Handler())
	defer tsDst.Close()
	src, err := fleet.NewHTTPShard(tsSrc.URL, nil, transport.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fleet.NewHTTPShard(tsDst.URL, nil, transport.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := src.EvictDevice("ghost"); err != nil || ok {
		t.Fatalf("evict of unknown device = (ok=%v, err=%v), want (false, nil)", ok, err)
	}

	stream := synthStream(b, 1, 6, 17)
	stampStream(stream, 2)
	if _, err := src.IngestBatch(stream); err != nil {
		t.Fatal(err)
	}
	device := stream[0].Device
	st, ok, err := src.EvictDevice(device)
	if err != nil || !ok {
		t.Fatalf("evict = (ok=%v, err=%v)", ok, err)
	}
	if st.Device != device || st.Seq != uint64(len(stream)) || st.Epoch != 2 {
		t.Fatalf("evicted state = %+v", st)
	}
	if occ, err := src.Occupancy(); err != nil || len(occ.Devices) != 0 {
		t.Fatalf("source still tracks %v (err %v)", occ.Devices, err)
	}

	if err := dst.InstallDevice(st); err != nil {
		t.Fatal(err)
	}
	occ, err := dst.Occupancy()
	if err != nil {
		t.Fatal(err)
	}
	if _, present := occ.Devices[device]; !present {
		t.Fatalf("destination does not track the migrated device: %v", occ.Devices)
	}
	// The migrated mark dedupes the device's in-flight retransmissions
	// on the new owner.
	before, err := dst.Events()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.IngestBatch(stream); err != nil {
		t.Fatal(err)
	}
	after, err := dst.Events()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("retransmitted stream committed %d new events on the new owner", len(after)-len(before))
	}

	expired, err := dst.ExpireBefore(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(expired) != 1 || expired[0] != device {
		t.Fatalf("expire = %v, want [%s]", expired, device)
	}
}

// TestFleetHandlerStatusParity pins the API-parity contract for error
// classes: an invalid report gets 400 through the fleet exactly as it
// would from one bms.Server (so retrying uplinks don't hammer a doomed
// request), and a fleet with no healthy shards answers 503.
func TestFleetHandlerStatusParity(t *testing.T) {
	b := building.PaperHouse()
	pool, err := fleet.NewLocalPool(b, 2, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := fleet.New(pool.Shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fleet.Handler(gw, fleet.HandlerOptions{}))
	defer ts.Close()

	// A report without a device is a client error on a single server;
	// it must be a client error through the fleet too.
	resp, err := http.Post(ts.URL+"/api/v1/observations", "application/json",
		bytes.NewReader([]byte(`{"atSeconds": 1, "beacons": []}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid report returned %s, want 400", resp.Status)
	}

	gw.MarkDown(0)
	gw.MarkDown(1)
	resp, err = http.Post(ts.URL+"/api/v1/observations", "application/json",
		bytes.NewReader([]byte(`{"device": "p", "atSeconds": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-healthy-shards returned %s, want 503", resp.Status)
	}
}

// TestFleetHandler exercises the gateway's own HTTP face: ingest,
// rollup, shard introspection, model distribution and training via the
// embedded trainer.
func TestFleetHandler(t *testing.T) {
	b := building.PaperHouse()
	pool, err := fleet.NewLocalPool(b, 2, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	gw, err := fleet.New(pool.Shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	trainer := newServer(t, b)
	ts := httptest.NewServer(fleet.Handler(gw, fleet.HandlerOptions{Trainer: trainer}))
	defer ts.Close()

	// Health is live and green.
	resp, err := http.Get(ts.URL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
		Down   int    `json:"down"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Shards != 2 || health.Down != 0 {
		t.Fatalf("health = %+v", health)
	}

	// Collect fingerprints through the gateway, then train + distribute.
	snap := trainSnapshot(t, b, 31)
	body, _ := json.Marshal(snap)
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/api/v1/model", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model distribution returned %s", resp.Status)
	}

	// Batch ingest through the gateway API.
	stream := synthStream(b, 8, 40, 13)
	body, _ = json.Marshal(stream)
	resp, err = http.Post(ts.URL+"/api/v1/observations:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var batchResp struct {
		Rooms []string `json:"rooms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batchResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batchResp.Rooms) != len(stream) {
		t.Fatalf("batch returned %d rooms, want %d", len(batchResp.Rooms), len(stream))
	}

	// One report through the single endpoint.
	body, _ = json.Marshal(stream[0])
	resp, err = http.Post(ts.URL+"/api/v1/observations", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single observation returned %s", resp.Status)
	}

	// Rollup reflects the crowd.
	resp, err = http.Get(ts.URL + "/api/v1/rollup")
	if err != nil {
		t.Fatal(err)
	}
	var rollup fleet.Rollup
	if err := json.NewDecoder(resp.Body).Decode(&rollup); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rollup.Devices != 8 {
		t.Fatalf("rollup devices = %d, want 8", rollup.Devices)
	}
	occupants := 0
	for _, r := range rollup.Rooms {
		occupants += r.Occupants
	}
	if occupants != 8 {
		t.Fatalf("rollup occupants = %d, want 8", occupants)
	}

	// Shard introspection accounts for every routed report.
	resp, err = http.Get(ts.URL + "/api/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	var shardsResp struct {
		Shards []fleet.ShardStatus `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shardsResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	routed := int64(0)
	for _, s := range shardsResp.Shards {
		routed += s.Routed
	}
	if routed != int64(len(stream)+1) {
		t.Fatalf("routed = %d, want %d", routed, len(stream)+1)
	}

	// Training through the gateway distributes to every shard.
	resp, err = http.Post(ts.URL+"/api/v1/train", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The scratch trainer in this test has no fingerprints of its own,
	// so train must reject cleanly rather than distribute garbage.
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("train on empty trainer returned %s, want 409", resp.Status)
	}
}
