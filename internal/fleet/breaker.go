package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"occusim/internal/bms"
	"occusim/internal/obs"
	"occusim/internal/overload"
	"occusim/internal/transport"
)

// ErrShardTripped marks an ingest refused because the owning shard's
// circuit breaker is open: recent consecutive deliveries to it failed
// and the gateway is failing fast instead of stacking timeouts. Distinct
// from MarkDown — the breaker never changes routing (the shard keeps its
// keys and is probed again after a cooldown); MarkDown reassigns them.
// The HTTP face maps it to 503 so upstream retry policies treat it as
// transient.
var ErrShardTripped = errors.New("fleet: shard circuit open")

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-shard circuit breaker on the ingest dispatch path.
// Closed: deliveries flow, consecutive failures are counted. Open (the
// count hit the threshold): deliveries fail fast with ErrShardTripped
// until the cooldown elapses. Half-open: exactly one delivery is let
// through as a probe — success closes the circuit, failure re-opens it
// for another cooldown. Health probes and migration traffic never pass
// through the breaker; it guards only report dispatch.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injected by tests

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
	trips    uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a delivery may proceed right now. In half-open
// it admits a single probe; the caller must report the outcome via
// observe.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a delivery the shard answered (including answers that
// are not infrastructure failures — a 4xx rejection or a 429 shed both
// prove the shard is alive) and closes the circuit. closed reports a
// genuine transition (the circuit was open or half-open), so callers
// can record the recovery without logging every healthy delivery.
func (b *breaker) success() (closed bool) {
	b.mu.Lock()
	closed = b.state != breakerClosed
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
	return closed
}

// failure records an infrastructure failure: it re-opens a half-open
// circuit immediately, and trips a closed one once the consecutive
// count reaches the threshold. tripped reports that THIS failure opened
// the circuit.
func (b *breaker) failure() (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
		return true
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.trips++
			return true
		}
	default: // already open (a straggler delivery admitted before the trip)
	}
	return false
}

// snapshot returns (state, trips) for status reporting.
func (b *breaker) snapshot() (breakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}

// breakerFailure decides whether a shard delivery error counts against
// the circuit. Only infrastructure trouble does: connection-level
// failures, timeouts, 5xx answers and protocol violations. A 429 shed
// or any other 4xx proves the shard is up and answering — an overloaded
// shard must shed through its own gate, not get amputated by the
// breaker on top of it.
func breakerFailure(err error) bool {
	if err == nil {
		return false
	}
	if _, ok := overload.IsOverload(err); ok {
		return false
	}
	// A stale-leader fence is the shard working correctly — it answered,
	// and the fault is this gateway's deposed epoch, not shard health.
	if errors.Is(err, bms.ErrStaleLeader) {
		return false
	}
	if code, ok := transport.StatusCode(err); ok {
		return code/100 == 5
	}
	if errors.Is(err, ErrShardTripped) {
		return false
	}
	return true
}

// breakerAllow fails fast with ErrShardTripped when the shard's circuit
// refuses the delivery; a gateway without breakers always allows.
func (g *Gateway) breakerAllow(idx int) error {
	if g.breakers == nil {
		return nil
	}
	if !g.breakers[idx].allow() {
		return fmt.Errorf("%w: shard %s", ErrShardTripped, g.shards[idx].Name())
	}
	return nil
}

// breakerObserve feeds a delivery outcome back into the shard's
// circuit, recording genuine state transitions (trip, re-close) in the
// flight recorder — steady-state deliveries record nothing.
func (g *Gateway) breakerObserve(idx int, err error) {
	if g.breakers == nil {
		return
	}
	gm := g.met
	if breakerFailure(err) {
		if g.breakers[idx].failure() && gm != nil {
			gm.rec.Record(obs.EventBreakerTrip, map[string]any{
				"shard": g.shards[idx].Name(), "cause": err.Error(),
			})
		}
	} else {
		if g.breakers[idx].success() && gm != nil {
			gm.rec.Record(obs.EventBreakerClose, map[string]any{
				"shard": g.shards[idx].Name(),
			})
		}
	}
}
