package fleet

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"occusim/internal/bms"
	"occusim/internal/overload"
	"occusim/internal/transport"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time          { return c.at }
func (c *fakeClock) advance(d time.Duration) { c.at = c.at.Add(d) }
func testBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(threshold, cooldown)
	clk := &fakeClock{at: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerStateMachine(t *testing.T) {
	b, clk := testBreaker(3, 10*time.Second)

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused delivery %d", i)
		}
		b.failure()
	}
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	// A success resets the consecutive count.
	b.success()
	for i := 0; i < 2; i++ {
		b.failure()
	}
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatal("success should have reset the consecutive-failure count")
	}
	// The third consecutive failure trips it.
	b.failure()
	if st, trips := b.snapshot(); st != breakerOpen || trips != 1 {
		t.Fatalf("after threshold: state=%v trips=%d, want open/1", st, trips)
	}
	if b.allow() {
		t.Fatal("open breaker allowed a delivery inside the cooldown")
	}

	// Cooldown elapses: exactly one half-open probe.
	clk.advance(10 * time.Second)
	if !b.allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.allow() {
		t.Fatal("half-open breaker allowed a second concurrent delivery")
	}
	// Probe fails: re-open for another full cooldown.
	b.failure()
	if st, trips := b.snapshot(); st != breakerOpen || trips != 2 {
		t.Fatalf("after failed probe: state=%v trips=%d, want open/2", st, trips)
	}
	clk.advance(9 * time.Second)
	if b.allow() {
		t.Fatal("re-opened breaker allowed a delivery before the fresh cooldown expired")
	}
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("second half-open probe refused")
	}
	// Probe succeeds: closed, counters reset.
	b.success()
	if st, _ := b.snapshot(); st != breakerClosed {
		t.Fatalf("after successful probe: state=%v, want closed", st)
	}
	if !b.allow() {
		t.Fatal("re-closed breaker refused delivery")
	}
}

// TestBreakerFailureClassification: only infrastructure trouble counts
// — a shard that sheds 429 or rejects a bad report is alive.
func TestBreakerFailureClassification(t *testing.T) {
	if breakerFailure(nil) {
		t.Fatal("nil error counted as failure")
	}
	if breakerFailure(&overload.Error{RetryAfter: time.Second}) {
		t.Fatal("overload shed counted as failure")
	}
	if breakerFailure(fmt.Errorf("fleet: shard x: %w", &overload.Error{RetryAfter: time.Second})) {
		t.Fatal("wrapped overload shed counted as failure")
	}
	if !breakerFailure(errors.New("connection refused")) {
		t.Fatal("plain connection error not counted as failure")
	}
	if breakerFailure(fmt.Errorf("wrap: %w", ErrShardTripped)) {
		t.Fatal("a tripped-circuit error must not feed back into the breaker")
	}

	// Status-coded errors via a real exchange: 5xx is a failure,
	// 429/4xx is not.
	for _, tc := range []struct {
		code    int
		failure bool
	}{
		{http.StatusInternalServerError, true},
		{http.StatusServiceUnavailable, true},
		{http.StatusTooManyRequests, false},
		{http.StatusBadRequest, false},
	} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "x", tc.code)
		}))
		_, err := transport.PostJSON(nil, ts.URL, []byte(`{}`), transport.RetryPolicy{})
		ts.Close()
		if err == nil {
			t.Fatalf("status %d should error", tc.code)
		}
		if got := breakerFailure(err); got != tc.failure {
			t.Fatalf("breakerFailure(status %d) = %v, want %v", tc.code, got, tc.failure)
		}
	}
}

// TestBreakerHalfOpenSingleProbe pins the half-open admission contract
// under concurrency: when the cooldown expires, EXACTLY ONE caller may
// pass as the probe no matter how many race through allow() at once —
// a half-open circuit that admits a thundering herd would re-stampede
// the very shard it was protecting. It also pins the re-arm rules: a
// failed probe re-opens the circuit (nobody else slips in until the
// next cooldown), a successful probe closes it for everyone, and the
// stale-leader fence is never an infrastructure failure.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := testBreaker(1, 10*time.Second)
	b.failure() // trip it
	clk.advance(10 * time.Second)

	const racers = 64
	var admitted atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent probes, want exactly 1", got)
	}

	// The probe fails: the circuit re-opens and holds everyone out for a
	// fresh cooldown — including half-open stragglers.
	b.failure()
	if b.allow() {
		t.Fatal("allow() during the re-opened cooldown")
	}
	clk.advance(9 * time.Second)
	if b.allow() {
		t.Fatal("cooldown restarted by the failed probe was not honoured")
	}
	clk.advance(time.Second)

	// Next cooldown: again one probe — this time it succeeds and the
	// circuit closes for all callers.
	admitted.Store(0)
	start = make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.allow() {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("second half-open window admitted %d probes, want exactly 1", got)
	}
	b.success()
	if !b.allow() || !b.allow() {
		t.Fatal("closed circuit after a successful probe must admit everyone")
	}
	if state, trips := b.snapshot(); state != breakerClosed || trips != 2 {
		t.Fatalf("final state=%v trips=%d, want closed/2", state, trips)
	}
}

// TestBreakerIgnoresStaleLeaderFence pins that a 409 leadership fence
// never counts against shard health: a deposed gateway's every write is
// fenced, and tripping breakers on that would amputate healthy shards
// from a gateway that may yet be re-elected.
func TestBreakerIgnoresStaleLeaderFence(t *testing.T) {
	if breakerFailure(&bms.StaleLeaderError{Granted: 4, Leader: "http://gwB"}) {
		t.Fatal("a stale-leader fence counted as an infrastructure failure")
	}
	if breakerFailure(fmt.Errorf("shard says: %w", &bms.StaleLeaderError{Granted: 4})) {
		t.Fatal("a wrapped stale-leader fence counted as an infrastructure failure")
	}
}
