package fleet_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"occusim/internal/bms"
	"occusim/internal/building"
	"occusim/internal/experiments"
	"occusim/internal/fleet"
	"occusim/internal/scenario"
	"occusim/internal/transport"
)

// pauseShard freezes ONE IngestBatch call mid-flight when armed: the
// call signals `entered` and then waits for resume — the zombie
// gateway's dispatch held inside a shard write while leadership moves
// underneath it. Completed inner calls are counted so the test can
// prove other sub-batches really committed at the old epoch.
type pauseShard struct {
	fleet.Shard
	mu      sync.Mutex
	gate    chan struct{} // non-nil: next IngestBatch blocks on it
	entered chan struct{} // closed when that call is inside
	done    atomic.Int64  // completed inner IngestBatch calls
}

func (p *pauseShard) arm() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gate = make(chan struct{})
	p.entered = make(chan struct{})
	return p.entered
}

func (p *pauseShard) resume() {
	p.mu.Lock()
	gate := p.gate
	p.gate, p.entered = nil, nil
	p.mu.Unlock()
	if gate != nil {
		close(gate)
	}
}

func (p *pauseShard) IngestBatch(reports []transport.Report) ([]string, error) {
	p.mu.Lock()
	gate, entered := p.gate, p.entered
	p.entered = nil // signal only the first arrival; the gate stays up
	p.mu.Unlock()
	if gate != nil {
		if entered != nil {
			close(entered)
		}
		<-gate
	}
	out, err := p.Shard.IngestBatch(reports)
	if err == nil {
		p.done.Add(1)
	}
	return out, err
}

// TestZombieGatewayFencedExactlyOnce is the PR's acceptance drill, in
// process: an active gateway is paused INSIDE a shard write mid-batch,
// the standby claims leadership through the shard quorum and takes
// over, the zombie resumes — its held write lands fenced — and the
// device uplink retransmits the whole batch through the new leader.
// Some sub-batches therefore arrive twice (once at epoch 1, once at
// epoch 2) and one arrives fenced; the final fleet state must still be
// byte-identical to a clean single server fed the stream exactly once.
func TestZombieGatewayFencedExactlyOnce(t *testing.T) {
	const seed = 42
	b := building.PaperHouse()

	pool, err := fleet.NewLocalPool(b, 3, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Gateway A's clients, each pausable; gateway B gets its own client
	// set over the same servers (the epoch stamp is per-client).
	paused := make([]*pauseShard, len(pool.Shards))
	shardsA := make([]fleet.Shard, len(pool.Shards))
	for i, s := range pool.Shards {
		paused[i] = &pauseShard{Shard: s}
		shardsA[i] = paused[i]
	}
	shardsB := make([]fleet.Shard, len(pool.Servers))
	for i, srv := range pool.Servers {
		ls, err := fleet.NewLocalShard(fmt.Sprintf("shard-%d", i), srv)
		if err != nil {
			t.Fatal(err)
		}
		shardsB[i] = ls
	}
	gwA, err := fleet.New(shardsA, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gwB, err := fleet.New(shardsB, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Same model the oracle's reference trains, installed once on the
	// shared servers.
	trainer := newServer(t, b)
	if err := experiments.TrainCrowdModel(trainer, b, seed); err != nil {
		t.Fatal(err)
	}
	snap, ok := trainer.ModelSnapshot()
	if !ok {
		t.Fatal("trainer has no model snapshot")
	}
	if err := gwA.DistributeModel(snap); err != nil {
		t.Fatal(err)
	}

	// Real HTTP faces: handler wiring needs the controller, and the
	// controller's Self URL needs the listener — indirect through a
	// late-bound handler.
	var handlerA, handlerB http.Handler
	tsA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerA.ServeHTTP(w, r)
	}))
	defer tsA.Close()
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerB.ServeHTTP(w, r)
	}))
	defer tsB.Close()
	// LIFO: release any still-held write before the listeners drain, so
	// an early t.Fatal cannot deadlock the deferred Closes.
	defer func() {
		for _, p := range paused {
			p.resume()
		}
	}()
	ctlA, err := fleet.NewLeaseController(gwA, fleet.LeaseConfig{Self: tsA.URL, Peer: tsB.URL})
	if err != nil {
		t.Fatal(err)
	}
	ctlB, err := fleet.NewLeaseController(gwB, fleet.LeaseConfig{Self: tsB.URL, Peer: tsA.URL})
	if err != nil {
		t.Fatal(err)
	}
	handlerA = fleet.Handler(gwA, fleet.HandlerOptions{Lease: ctlA})
	handlerB = fleet.Handler(gwB, fleet.HandlerOptions{Lease: ctlB})

	if err := ctlA.Claim(); err != nil {
		t.Fatal(err)
	}

	// The device-side uplink: active first, standby second, no real
	// sleeping.
	uplink, err := transport.NewFailoverUplink([]string{tsA.URL, tsB.URL}, nil, transport.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	stream := synthStream(b, 12, 60, 11)
	stampStream(stream, 1)
	const chunk = 36
	var chunks [][]transport.Report
	for i := 0; i < len(stream); i += chunk {
		chunks = append(chunks, stream[i:min(i+chunk, len(stream))])
	}
	mid := len(chunks) / 2

	// Phase 1: steady state through the active.
	for _, c := range chunks[:mid] {
		if err := uplink.SendBatch(c); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: the zombie batch. Freeze A inside the sub-batch for the
	// shard owning the batch's first device.
	zombie := chunks[mid]
	victim, err := gwA.ShardFor(zombie[0].Device)
	if err != nil {
		t.Fatal(err)
	}
	baseline := make([]int64, len(paused))
	for i, p := range paused {
		baseline[i] = p.done.Load()
	}
	entered := paused[victim].arm()
	sent := make(chan error, 1)
	go func() { sent <- uplink.SendBatch(zombie) }()
	<-entered // A's dispatch is now held inside shard-victim's write

	// Wait for at least one OTHER sub-batch to commit at epoch 1 —
	// otherwise the "paused mid-batch" scenario is vacuous.
	partial := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		for i, p := range paused {
			if i != victim && p.done.Load() > baseline[i] {
				partial = true
			}
		}
		if partial {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !partial {
		t.Fatal("no sub-batch committed while the victim was paused — dispatch is not concurrent and the drill is vacuous")
	}

	// The standby takes over while the zombie is frozen.
	if err := ctlB.Claim(); err != nil {
		t.Fatalf("standby takeover: %v", err)
	}
	if ctlB.Epoch() != 2 {
		t.Fatalf("takeover epoch = %d", ctlB.Epoch())
	}

	// Unpause. The held write is stamped with epoch 1 against grants of
	// 2: fenced. A answers the uplink 409 + hint, deposes itself via
	// ObserveStale, and the uplink retransmits the WHOLE batch to B —
	// the double-delivery overlap the seq marks must absorb.
	paused[victim].resume()
	if err := <-sent; err != nil {
		t.Fatalf("zombie batch never landed through the new leader: %v", err)
	}
	if ctlA.Active() {
		t.Fatal("zombie gateway still believes it leads after being fenced")
	}
	redirects, _ := uplink.Stats()
	if redirects == 0 {
		t.Fatal("uplink never followed a leader hint — the failover path is vacuous")
	}
	if uplink.Target() != tsB.URL {
		t.Fatalf("uplink target after failover = %q, want the new leader %q", uplink.Target(), tsB.URL)
	}
	for i, srv := range pool.Servers {
		if epoch, holder := srv.GrantedLease(); epoch != 2 || holder != tsB.URL {
			t.Fatalf("shard-%d grant after takeover = %d/%q", i, epoch, holder)
		}
	}

	// A deposed gateway's direct writes stay fenced forever.
	if _, err := gwA.IngestBatch(zombie); !errors.Is(err, bms.ErrStaleLeader) {
		t.Fatalf("deposed gateway write: err=%v", err)
	}

	// Phase 3: the rest of the trace rides the new leader.
	for _, c := range chunks[mid+1:] {
		if err := uplink.SendBatch(c); err != nil {
			t.Fatal(err)
		}
	}

	// The oracle: a clean single server fed the stream exactly once.
	// Byte-identical occupancy, events and dwell — double-delivered and
	// fenced batches must have left no trace.
	ref, err := scenario.Reference(b, [][]transport.Report{stream}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.VerifyExact(gwB, ref); err != nil {
		t.Fatal(err)
	}
}
