// Package fleet is the horizontal-scaling layer above bms: a
// consistent-hash gateway that shards device report streams across a
// pool of BMS servers, distributes trained model snapshots to every
// shard, and federates the per-shard occupancy state back into
// building-level head counts, enter/exit event streams and dwell
// rollups.
//
// Routing is keyed by device id, so one device's timeline always lands
// on one shard and the per-device ordering contract of bms.IngestBatch
// carries through unchanged. Shards hang on a ring of virtual nodes;
// when a shard is marked down its keys — and only its keys — slide to
// the next healthy shard clockwise, which makes rebalancing
// deterministic and minimal. Because every shard debounces and
// timestamps transitions identically, the federated event stream is
// byte-identical to what one big server would have produced for the
// same input (see TestFleetMatchesSingleServer).
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"occusim/internal/bms"
	"occusim/internal/obs"
	"occusim/internal/occupancy"
	"occusim/internal/overload"
	"occusim/internal/ring"
	"occusim/internal/transport"
)

// Config parameterises a Gateway; zero fields take defaults.
type Config struct {
	// Replicas is the number of virtual nodes per shard on the hash
	// ring (default 64). More replicas smooth the key distribution at
	// the cost of a larger ring.
	Replicas int
	// SerialDispatch processes a split batch shard by shard instead of
	// concurrently. Measurement harnesses use it to attribute work to
	// shards exactly; deployments leave it off.
	SerialDispatch bool
	// ProbeInterval rate-limits CheckHealth: calls within the interval
	// of the last probe return the cached statuses instead of fanning a
	// fresh probe to every shard. Gateways that expose CheckHealth on a
	// public health endpoint (fleet.Handler, bmsd -shards) should set
	// this so external polling frequency cannot drive probe fan-out or
	// routing flaps. 0 probes on every call.
	ProbeInterval time.Duration
	// ResidueTTL ages out per-device residue: state a shard still holds
	// for a device that moved away without migration (the old owner was
	// unreachable at rebalance). When > 0, federated reads sweep the
	// healthy shards (rate-limited: at most one expiry fan-out per
	// TTL/4 of report-clock advance, so residue lives ≤ 1.25×TTL),
	// evicting any device whose last report is more
	// than ResidueTTL behind the newest report the gateway has routed —
	// measured on the reports' own clock, so simulated and real time
	// behave identically. The comparison leans on the report schema's
	// contract that AtSeconds is one building-wide clock (see
	// transport.Report): a device whose clock lags the building's by
	// more than the TTL would be swept as residue, so do not enable
	// this with unsynchronised device clocks — or enable SkewWindow,
	// which re-establishes that contract against hostile clocks. 0
	// disables the sweep; migration alone then keeps the views exact as
	// long as old owners stay reachable.
	ResidueTTL time.Duration
	// Admission bounds concurrent gateway ingest (see overload.Config):
	// beyond MaxInflight running and MaxQueue waiting, Ingest and
	// IngestBatch shed with an overload error (HTTP face: 429 +
	// Retry-After) instead of queuing without bound. The zero config
	// admits everything.
	Admission overload.Config
	// SkewWindow enables skew-tolerant ingest: a device whose report
	// times sit further than the window from the building's report
	// clock has a per-device offset estimated and subtracted before
	// routing, so one phone with a broken clock cannot poison the
	// ResidueTTL sweep or the federated timeline (see skewTracker). 0
	// trusts device clocks, the historical behaviour.
	SkewWindow time.Duration
	// BreakerThreshold arms a per-shard circuit breaker on the ingest
	// dispatch path: after that many CONSECUTIVE infrastructure
	// failures (timeouts, connection errors, 5xx — never 4xx/429) the
	// shard's circuit opens and deliveries to it fail fast with
	// ErrShardTripped until BreakerCooldown (default 5s) elapses, then
	// one half-open probe decides re-close vs re-open. Distinct from
	// MarkDown: the breaker never reassigns keys. 0 disables.
	BreakerThreshold int
	BreakerCooldown  time.Duration
}

// ErrNoHealthyShards is returned when every shard is down — the
// fleet's terminal routing failure (the HTTP handler maps it to 503).
var ErrNoHealthyShards = errors.New("fleet: no healthy shards")

// ErrShardMisbehaved wraps protocol violations by a shard (a 2xx
// answer with the wrong shape, a short rooms slice): server-side
// faults, never the reporting client's — the HTTP handler maps them to
// 502 so upstream retry policies treat them as transient.
var ErrShardMisbehaved = errors.New("fleet: shard protocol error")

// Gateway fronts a pool of shards. It is safe for concurrent use.
type Gateway struct {
	shards   []Shard
	ring     *ring.Ring // shared routing function; see internal/ring
	byName   map[string]int
	serial   bool
	replicas int

	// mu guards down, pinned, fenced and digest; routing takes it shared
	// on every report. pinned marks shards an operator drained with
	// MarkDown: health probes must not resurrect them. fenced maps each
	// mid-migration device to its ingest fence — fences are raised under
	// the same exclusive hold that flips the routing table, so no report
	// can resolve an owner under the new table before its device's fence
	// is up (see applyRoutingChange). digest is the cached ring
	// fingerprint of (names, replicas, down) — the pre-split contract
	// token — recomputed under the exclusive hold whenever down changes.
	mu     sync.RWMutex
	down   []bool
	pinned []bool
	fenced map[string]*fence
	digest string

	// routed counts reports delivered per shard (batch + single).
	routedMu sync.Mutex
	routed   []int64

	// devMu guards the device registry the rebalance migration and the
	// TTL sweep work from: every device the gateway has delivered for,
	// the newest report time routed, and the cutoff of the last
	// fully-successful sweep. migrateMu serializes whole migrations
	// (concurrent routing changes — an operator MarkDown racing a
	// probe transition — must not interleave their evict/install pairs
	// for one device); sweepMu serializes TTL sweeps so concurrent
	// pollers don't fan duplicate expiry calls.
	ttl       time.Duration
	migrateMu sync.Mutex
	sweepMu   sync.Mutex
	devMu     sync.Mutex
	known     map[string]struct{}
	maxAt     float64
	lastSweep time.Duration
	// flight counts in-flight shard deliveries per device (devMu);
	// flightCond is signalled as counts return to zero, which is what
	// the migration's drain phase waits on.
	flight     map[string]int
	flightCond *sync.Cond
	// sweepAt/sweepOK back off retries of a failed sweep (sweepMu).
	sweepAt time.Time
	sweepOK bool

	// probeMu guards the CheckHealth rate limit (probeEvery > 0).
	probeEvery   time.Duration
	probeMu      sync.Mutex
	lastProbe    time.Time
	lastStatuses []ShardStatus

	// gate bounds concurrent ingest admissions (nil admits all); skew
	// re-anchors hostile device clocks (nil trusts them); breakers hold
	// one circuit per shard on the dispatch path (nil disables). All
	// three are fixed at New and internally synchronized.
	gate     *overload.Gate
	skew     *skewTracker
	breakers []*breaker

	// gwEpoch is the leadership epoch stamped on every shard write; see
	// SetEpoch. Zero (the default) writes unfenced.
	gwEpoch atomic.Uint64

	// met is the telemetry handle bundle (nil until Instrument); see
	// telemetry.go.
	met *gatewayMetrics
}

// SetEpoch stamps the gateway's leadership epoch onto every shard
// client: all subsequent ingest, migration and expiry writes carry it,
// so a shard that has granted a newer epoch fences them with
// bms.ErrStaleLeader. The LeaseController calls this on every
// leadership transition; zero returns to unfenced legacy writes.
func (g *Gateway) SetEpoch(epoch uint64) {
	g.gwEpoch.Store(epoch)
	for _, s := range g.shards {
		s.StampEpoch(epoch)
	}
}

// Epoch returns the leadership epoch set by SetEpoch (zero = unfenced).
func (g *Gateway) Epoch() uint64 { return g.gwEpoch.Load() }

// New builds a gateway over the shards. Shard names must be non-empty
// and distinct: they seed the virtual nodes, and a duplicate name would
// silently merge two shards' arcs.
func New(shards []Shard, cfg Config) (*Gateway, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: gateway needs at least one shard")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = ring.DefaultReplicas
	}
	names := make([]string, len(shards))
	for i, s := range shards {
		if s == nil || s.Name() == "" {
			return nil, fmt.Errorf("fleet: nil or unnamed shard")
		}
		names[i] = s.Name()
	}
	g := &Gateway{
		shards:     shards,
		serial:     cfg.SerialDispatch,
		replicas:   cfg.Replicas,
		probeEvery: cfg.ProbeInterval,
		ttl:        cfg.ResidueTTL,
		known:      map[string]struct{}{},
		fenced:     map[string]*fence{},
		flight:     map[string]int{},
		down:       make([]bool, len(shards)),
		pinned:     make([]bool, len(shards)),
		routed:     make([]int64, len(shards)),
	}
	g.flightCond = sync.NewCond(&g.devMu)
	g.gate = overload.NewGate(cfg.Admission)
	if cfg.SkewWindow > 0 {
		g.skew = newSkewTracker(cfg.SkewWindow)
	}
	if cfg.BreakerThreshold > 0 {
		g.breakers = make([]*breaker, len(shards))
		for i := range g.breakers {
			g.breakers[i] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		}
	}
	r, err := ring.New(names, cfg.Replicas)
	if err != nil {
		// ring.New only rejects duplicate/empty names; keep the fleet-
		// flavoured error the callers and tests expect.
		return nil, fmt.Errorf("fleet: %w", err)
	}
	g.ring = r
	g.digest = r.Digest(g.down)
	g.byName = make(map[string]int, len(shards))
	for i, n := range names {
		g.byName[n] = i
	}
	return g, nil
}

// hash64 is the shared routing hash (see ring.Hash64, a frozen wire
// contract: pre-split devices must compute identical values).
func hash64(key string) uint64 { return ring.Hash64(key) }

// Shards returns the pool size.
func (g *Gateway) Shards() int { return len(g.shards) }

// ShardFor returns the index of the shard currently owning the device.
func (g *Gateway) ShardFor(device string) (int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ownerLocked(hash64(device))
}

// ownerLocked walks the ring clockwise from the device's hash to the
// first virtual node of a healthy shard; callers hold g.mu.
func (g *Gateway) ownerLocked(h uint64) (int, error) {
	return g.ownerWith(g.down, h)
}

// ownerWith resolves the device hash against an explicit down set —
// the routing function as a pure function of (ring, down), which the
// rebalance migration uses to diff ownership before and after a
// routing change.
func (g *Gateway) ownerWith(down []bool, h uint64) (int, error) {
	idx, err := g.ring.OwnerHash(h, down)
	if err != nil {
		return -1, ErrNoHealthyShards
	}
	return idx, nil
}

// RingInfo is the routing table a pre-splitting device needs: the
// inputs of the ring function plus their canonical digest. Served on
// GET /api/v1/ring (see http.go); a device that splits against this
// view stamps the digest on its upload and the gateway forwards the
// pre-split sections only while the digest still matches its own.
type RingInfo struct {
	Digest   string   `json:"digest"`
	Replicas int      `json:"replicas"`
	Shards   []string `json:"shards"`
	Down     []bool   `json:"down"`
}

// RingInfo snapshots the current routing inputs and digest.
func (g *Gateway) RingInfo() RingInfo {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return RingInfo{
		Digest:   g.digest,
		Replicas: g.ring.Replicas(),
		Shards:   g.ring.Names(),
		Down:     append([]bool(nil), g.down...),
	}
}

// RingDigest returns the cached fingerprint of the current routing
// inputs.
func (g *Gateway) RingDigest() string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.digest
}

// fence pauses ingest for one device while its state migrates between
// shards; done is closed when the move completes and waiters re-resolve
// routing against the new table.
type fence struct {
	done chan struct{}
}

// acquire resolves routing for a batch under one consistent view:
// fence check, owner resolution, registration and in-flight accounting
// happen in a single critical section against the routing flip
// (applyRoutingChange holds mu exclusively for the flip AND the fence
// raise, so a report either resolves fully under the old table — and
// is then drained before the move — or waits on the fence and resolves
// under the new one; no report can thread between). Reports whose
// device is mid-migration block until the fence lifts — the "pause"
// half of pause → drain → move → resume. The returned release must be
// called once the shard deliveries finish, success or not.
func (g *Gateway) acquire(reports []transport.Report) (shardOf []int32, release func(), err error) {
	for {
		g.mu.RLock()
		if len(g.fenced) > 0 {
			var wait chan struct{}
			for i := range reports {
				if f, ok := g.fenced[reports[i].Device]; ok {
					wait = f.done
					break
				}
			}
			if wait != nil {
				g.mu.RUnlock()
				<-wait
				continue
			}
		}
		shardOf = make([]int32, len(reports))
		for i := range reports {
			idx, err := g.ownerLocked(hash64(reports[i].Device))
			if err != nil {
				g.mu.RUnlock()
				return nil, nil, err
			}
			shardOf[i] = int32(idx)
		}
		// Register and count in-flight under the same routing view: a
		// migration that flips after this section sees these devices in
		// the registry (its snapshot is taken under the exclusive hold)
		// and drains these deliveries before moving state. Registering
		// even before the delivery succeeds is deliberate — a lost
		// response still committed on the shard, and the device must
		// stay visible to rebalance migration.
		g.devMu.Lock()
		for i := range reports {
			g.known[reports[i].Device] = struct{}{}
			if reports[i].AtSeconds > g.maxAt {
				g.maxAt = reports[i].AtSeconds
			}
			g.flight[reports[i].Device]++
		}
		g.devMu.Unlock()
		g.mu.RUnlock()
		return shardOf, func() {
			g.devMu.Lock()
			for i := range reports {
				d := reports[i].Device
				if g.flight[d]--; g.flight[d] <= 0 {
					delete(g.flight, d)
				}
			}
			g.devMu.Unlock()
			g.flightCond.Broadcast()
		}, nil
	}
}

// Ingest routes one report to its owning shard and returns the
// predicted room. With Admission configured the call may shed (an
// overload error the HTTP face maps to 429 + Retry-After); with a
// breaker armed and the owner's circuit open it fails fast with
// ErrShardTripped.
func (g *Gateway) Ingest(r transport.Report) (string, error) {
	admit, err := g.gate.Acquire()
	if err != nil {
		return "", err
	}
	defer admit()
	batch := g.skew.correct([]transport.Report{r})
	shardOf, release, err := g.acquire(batch)
	if err != nil {
		return "", err
	}
	defer release()
	idx := int(shardOf[0])
	if err := g.breakerAllow(idx); err != nil {
		return "", err
	}
	gm := g.met
	var sendStart time.Time
	if gm != nil {
		sendStart = time.Now()
	}
	room, err := g.shards[idx].Ingest(batch[0])
	if gm != nil {
		gm.sendLatency[idx].Since(sendStart)
	}
	g.breakerObserve(idx, err)
	if err != nil {
		return "", fmt.Errorf("fleet: shard %s: %w", g.shards[idx].Name(), err)
	}
	g.note(idx, 1)
	return room, nil
}

// IngestBatch splits a mixed-device batch into per-shard sub-batches
// (stable split, so each device's reports keep their order), delivers
// them — concurrently unless SerialDispatch — and reassembles the
// predicted rooms into input order. The whole batch is routed against
// one consistent view of shard health; a shard failure fails the call
// and the caller's retry policy (transport.RetryPolicy upstream)
// decides what happens next.
func (g *Gateway) IngestBatch(reports []transport.Report) ([]string, error) {
	if len(reports) == 0 {
		return nil, nil
	}
	admit, err := g.gate.Acquire()
	if err != nil {
		return nil, err
	}
	defer admit()
	gm := g.met
	var splitStart time.Time
	if gm != nil {
		splitStart = time.Now()
		gm.batchSize.Observe(int64(len(reports)))
	}
	reports = g.skew.correct(reports)
	shardOf, release, err := g.acquire(reports)
	if err != nil {
		return nil, err
	}
	defer release()
	perShard := make([][]transport.Report, len(g.shards))
	posOf := make([]int32, len(reports))
	for i := range reports {
		idx := shardOf[i]
		posOf[i] = int32(len(perShard[idx]))
		perShard[idx] = append(perShard[idx], reports[i])
	}
	if gm != nil {
		gm.splitTime.Since(splitStart)
	}

	rooms := make([][]string, len(g.shards))
	errs := make([]error, len(g.shards))
	dispatch := func(idx int) {
		sub := perShard[idx]
		if len(sub) == 0 {
			return
		}
		if err := g.breakerAllow(idx); err != nil {
			errs[idx] = err
			return
		}
		var sendStart time.Time
		if gm != nil {
			sendStart = time.Now()
		}
		out, err := g.shards[idx].IngestBatch(sub)
		if gm != nil {
			gm.sendLatency[idx].Since(sendStart)
		}
		g.breakerObserve(idx, err)
		if err != nil {
			errs[idx] = fmt.Errorf("fleet: shard %s: %w", g.shards[idx].Name(), err)
			return
		}
		if len(out) != len(sub) {
			// A version-skewed or misbehaving shard (an HTTP shard
			// answering 2xx with the wrong shape decodes to a short
			// slice) must fail the batch, not panic the reassembly.
			errs[idx] = fmt.Errorf("%w: shard %s returned %d rooms for %d reports",
				ErrShardMisbehaved, g.shards[idx].Name(), len(out), len(sub))
			return
		}
		rooms[idx] = out
		g.note(idx, int64(len(sub)))
	}
	if g.serial || len(g.shards) == 1 {
		for idx := range g.shards {
			dispatch(idx)
		}
	} else {
		var wg sync.WaitGroup
		for idx := range g.shards {
			if len(perShard[idx]) == 0 {
				continue
			}
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				dispatch(idx)
			}(idx)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var asmStart time.Time
	if gm != nil {
		asmStart = time.Now()
	}
	out := make([]string, len(reports))
	for i := range reports {
		out[i] = rooms[shardOf[i]][posOf[i]]
	}
	if gm != nil {
		gm.reassembly.Since(asmStart)
	}
	return out, nil
}

// AdmissionStats returns lifetime (admitted, shed) ingest counts of the
// gateway's own gate; zeros when Admission is not configured.
func (g *Gateway) AdmissionStats() (admitted, shed uint64) {
	return g.gate.Stats()
}

// SkewAdjusted returns how many reports have had their timestamps
// re-anchored onto the building clock; zero when SkewWindow is off.
func (g *Gateway) SkewAdjusted() uint64 {
	return g.skew.stats()
}

// note bumps the per-shard routed counter.
func (g *Gateway) note(idx int, n int64) {
	g.routedMu.Lock()
	g.routed[idx] += n
	g.routedMu.Unlock()
}

// DistributeModel pushes a trained model snapshot to every shard, so
// classification stays identical fleet-wide. The snapshot must carry a
// positive version: with version 0 each shard's store would bump its
// own counter and the fleet's reported versions would silently diverge.
// Failures are collected per shard and joined; shards that did install
// keep the new model (the caller re-distributes to stragglers after
// they recover).
func (g *Gateway) DistributeModel(snap bms.ModelSnapshot) error {
	if snap.Version <= 0 {
		return fmt.Errorf("fleet: model snapshot must carry a positive version, got %d", snap.Version)
	}
	// Push concurrently: k slow or dead remote shards must cost one
	// install timeout, not k of them in sequence.
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, s := range g.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			if err := s.InstallModel(snap); err != nil {
				errs[i] = fmt.Errorf("fleet: shard %s: %w", s.Name(), err)
			}
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// healthyShards snapshots the indices currently taking traffic.
func (g *Gateway) healthyShards() []int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int, 0, len(g.shards))
	for i := range g.shards {
		if !g.down[i] {
			out = append(out, i)
		}
	}
	return out
}

// maybeSweep runs the residue TTL sweep when it is configured and the
// report clock has advanced past the last fully-swept cutoff: every
// healthy shard evicts devices last observed more than ResidueTTL
// before the newest routed report. Actively reporting devices always
// have a recent observation on their current owner, so the sweep only
// catches residue (and genuinely departed devices). The cutoff is
// recorded as done only when every healthy shard swept successfully —
// a shard whose expiry call failed keeps the sweep re-armed, so its
// residue is retried on the next read instead of being skipped forever
// (the report clock may never advance again).
//
// Sweeps are rate-limited on the report clock: a fresh sweep runs only
// once the cutoff has advanced by at least a quarter of the TTL past
// the last completed one, so steady-state reads under live traffic are
// sweep-free (residue then lives at most 1.25×TTL — the bound the
// knob promises, slightly relaxed, instead of a per-read expiry
// fan-out to every shard). After an incomplete sweep (some shard's
// expiry call failed), retries additionally back off on the wall
// clock, so one persistently failing shard — a version-skewed box
// without the expire endpoint, a timeout — cannot turn every
// federated read into a blocking fan-out.
func (g *Gateway) maybeSweep() {
	if g.ttl <= 0 {
		return
	}
	// TryLock, not Lock: a reader arriving while a sweep is in flight
	// must take its fast path (merge and return), not queue behind the
	// sweeper's network round-trips.
	if !g.sweepMu.TryLock() {
		return
	}
	defer g.sweepMu.Unlock()
	g.devMu.Lock()
	cutoff := time.Duration(g.maxAt*float64(time.Second)) - g.ttl
	last := g.lastSweep
	g.devMu.Unlock()
	if cutoff <= 0 || cutoff < last+g.ttl/4 {
		return
	}
	if !g.sweepOK && time.Since(g.sweepAt) < sweepRetryBackoff {
		return
	}
	g.sweepAt = time.Now()
	_, g.sweepOK = g.expireBefore(cutoff)
	if g.sweepOK {
		g.devMu.Lock()
		if cutoff > g.lastSweep {
			g.lastSweep = cutoff
		}
		g.devMu.Unlock()
	}
}

// sweepRetryBackoff spaces retries of a sweep some shard failed.
const sweepRetryBackoff = 30 * time.Second

// ExpireBefore evicts devices last observed before cutoff (report
// clock) from every healthy shard and the gateway's registry,
// returning the evicted names, sorted and deduplicated. Exposed for
// operators; Occupancy/Rollup run it automatically via ResidueTTL.
func (g *Gateway) ExpireBefore(cutoff time.Duration) []string {
	out, _ := g.expireBefore(cutoff)
	return out
}

// expireBefore fans the sweep to the healthy shards; complete is true
// only if every one of them answered. A device leaves the gateway's
// migration registry only when its CURRENT ring owner expired it (a
// genuine departure) — expiring a residue copy off a non-owner must
// not hide a still-active device from the next rebalance migration.
func (g *Gateway) expireBefore(cutoff time.Duration) (expired []string, complete bool) {
	// Fan out concurrently, as probeAll and DistributeModel do: k slow
	// shards must cost one expiry timeout, not k in sequence.
	healthy := g.healthyShards()
	perShard := make([][]string, len(healthy))
	errs := make([]error, len(healthy))
	var wg sync.WaitGroup
	for k, i := range healthy {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			perShard[k], errs[k] = g.shards[i].ExpireBefore(cutoff)
		}(k, i)
	}
	wg.Wait()
	seen := map[string]bool{}
	ownerExpired := map[string]bool{}
	complete = true
	for k, i := range healthy {
		if errs[k] != nil {
			complete = false // retried on a later read
			continue
		}
		for _, d := range perShard[k] {
			seen[d] = true
			if owner, err := g.ShardFor(d); err == nil && owner == i {
				ownerExpired[d] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	g.devMu.Lock()
	for d := range seen {
		if ownerExpired[d] {
			delete(g.known, d)
		}
		out = append(out, d)
	}
	g.devMu.Unlock()
	sort.Strings(out)
	return out, complete
}

// Occupancy merges the healthy shards' head counts and device rooms
// into one building-level snapshot. Device partitions are disjoint, so
// the merge is a union; a down shard's devices are simply absent until
// it recovers or its keys report through their new owner.
func (g *Gateway) Occupancy() (bms.OccupancySnapshot, error) {
	g.maybeSweep()
	out := bms.OccupancySnapshot{Rooms: map[string]int{}, Devices: map[string]string{}}
	for _, i := range g.healthyShards() {
		snap, err := g.shards[i].Occupancy()
		if err != nil {
			return bms.OccupancySnapshot{}, fmt.Errorf("fleet: shard %s: %w", g.shards[i].Name(), err)
		}
		for room, n := range snap.Rooms {
			out.Rooms[room] += n
		}
		for dev, room := range snap.Devices {
			out.Devices[dev] = room
		}
	}
	return out, nil
}

// Events merges the healthy shards' committed enter/exit streams into
// the fleet-wide event log, time-canonical exactly as occupancy.Sharded
// merges its stripes: nondecreasing time, ties broken by device name,
// one device's same-instant exit/enter pair keeping its in-shard order.
func (g *Gateway) Events() ([]occupancy.Event, error) {
	var all []occupancy.Event
	for _, i := range g.healthyShards() {
		evs, err := g.shards[i].Events()
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %s: %w", g.shards[i].Name(), err)
		}
		all = append(all, evs...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Device < all[j].Device
	})
	return all, nil
}

// DwellTotals sums the healthy shards' per-room dwell rollups.
func (g *Gateway) DwellTotals() (map[string]time.Duration, error) {
	g.maybeSweep()
	out := map[string]time.Duration{}
	for _, i := range g.healthyShards() {
		totals, err := g.shards[i].DwellTotals()
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %s: %w", g.shards[i].Name(), err)
		}
		for room, d := range totals {
			out[room] += d
		}
	}
	return out, nil
}

// RoomRollup is one room's slice of the fleet-wide occupancy rollup.
type RoomRollup struct {
	// Occupants is the current head count.
	Occupants int `json:"occupants"`
	// Enters and Exits count committed transitions over the fleet's
	// lifetime.
	Enters int `json:"enters"`
	Exits  int `json:"exits"`
	// DwellSeconds is the total time devices have spent in the room.
	DwellSeconds float64 `json:"dwellSeconds"`
}

// Rollup is the live building-level occupancy view the smart-building
// controllers consume: who-is-where collapsed to per-room aggregates.
type Rollup struct {
	// Devices is the fleet-wide tracked device count.
	Devices int `json:"devices"`
	// Events is the fleet-wide committed event count.
	Events int `json:"events"`
	// Rooms maps room name to its aggregates.
	Rooms map[string]RoomRollup `json:"rooms"`
}

// Rollup federates head counts, transition totals and dwell into one
// building-level view.
func (g *Gateway) Rollup() (Rollup, error) {
	snap, err := g.Occupancy()
	if err != nil {
		return Rollup{}, err
	}
	events, err := g.Events()
	if err != nil {
		return Rollup{}, err
	}
	dwell, err := g.DwellTotals()
	if err != nil {
		return Rollup{}, err
	}
	out := Rollup{Devices: len(snap.Devices), Events: len(events), Rooms: map[string]RoomRollup{}}
	for room, n := range snap.Rooms {
		r := out.Rooms[room]
		r.Occupants = n
		out.Rooms[room] = r
	}
	for _, e := range events {
		r := out.Rooms[e.Room]
		if e.Kind == occupancy.Enter {
			r.Enters++
		} else {
			r.Exits++
		}
		out.Rooms[e.Room] = r
	}
	for room, d := range dwell {
		r := out.Rooms[room]
		r.DwellSeconds = d.Seconds()
		out.Rooms[room] = r
	}
	return out, nil
}

// ShardStatus is one shard's state from the gateway's point of view.
type ShardStatus struct {
	Name string `json:"name"`
	Down bool   `json:"down"`
	// Routed counts reports delivered to the shard by this gateway.
	Routed int64 `json:"routed"`
	// Err is the last health-check failure ("" when healthy).
	Err string `json:"err,omitempty"`
	// Breaker is the shard's circuit state ("closed", "open",
	// "half-open"); empty when no breaker is armed. Trips counts how
	// often the circuit has opened.
	Breaker string `json:"breaker,omitempty"`
	Trips   uint64 `json:"trips,omitempty"`
}

// breakerStatus annotates one status with its shard's circuit state.
func (g *Gateway) breakerStatus(i int, st *ShardStatus) {
	if g.breakers == nil {
		return
	}
	state, trips := g.breakers[i].snapshot()
	switch state {
	case breakerOpen:
		st.Breaker = "open"
	case breakerHalfOpen:
		st.Breaker = "half-open"
	default:
		st.Breaker = "closed"
	}
	st.Trips = trips
}

// CheckHealth probes every shard and updates the routing table: a
// failing shard is marked down (its keys slide to the next healthy
// shard on the ring), a recovering shard is marked up (its keys slide
// back — the same minimal, deterministic movement in reverse). The
// statuses reflect this probe.
func (g *Gateway) CheckHealth() []ShardStatus {
	// Rate limit: within ProbeInterval of the last probe, answer from
	// the cache so external health polling cannot drive probe fan-out.
	// probeMu is held across the probe itself, so concurrent pollers
	// arriving just past the interval queue behind one prober and get
	// its fresh cache instead of each fanning their own sweep.
	if g.probeEvery > 0 {
		g.probeMu.Lock()
		defer g.probeMu.Unlock()
		if !g.lastProbe.IsZero() && time.Since(g.lastProbe) < g.probeEvery {
			return append([]ShardStatus(nil), g.lastStatuses...)
		}
	}
	out := g.probeAll()
	if g.probeEvery > 0 {
		g.lastProbe = time.Now()
		g.lastStatuses = append([]ShardStatus(nil), out...)
	}
	return out
}

// probeAll performs one live health sweep and updates routing.
func (g *Gateway) probeAll() []ShardStatus {
	// Probe concurrently: k dead remote shards must cost one probe
	// timeout, not k of them in sequence. Operator-drained shards
	// (MarkDown) are not probed and never resurrected by a probe — only
	// MarkUp returns them to routing.
	g.mu.RLock()
	pinned := append([]bool(nil), g.pinned...)
	g.mu.RUnlock()
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, s := range g.shards {
		if pinned[i] {
			errs[i] = errors.New("drained by operator")
			continue
		}
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			errs[i] = s.Health()
		}(i, s)
	}
	wg.Wait()
	out := make([]ShardStatus, len(g.shards))
	// The down-set flip and its fenced migration are one atomic step
	// under migrateMu, for the same ordering reason as setDown.
	g.migrateMu.Lock()
	down := g.applyRoutingChange(func() {
		for i := range g.shards {
			g.down[i] = g.pinned[i] || errs[i] != nil
		}
	})
	g.migrateMu.Unlock()
	g.routedMu.Lock()
	routed := append([]int64(nil), g.routed...)
	g.routedMu.Unlock()
	for i, s := range g.shards {
		out[i] = ShardStatus{Name: s.Name(), Down: down[i], Routed: routed[i]}
		if errs[i] != nil {
			out[i].Err = errs[i].Error()
		}
	}
	return out
}

// MarkDown drains the shard: it leaves routing immediately and stays
// out across health probes until MarkUp — a probe must not resurrect a
// box an operator is working on. The drained shard's devices are
// migrated to their new owners (a drain is planned, so the box is
// still reachable and hands its state over; see migrate).
func (g *Gateway) MarkDown(i int) {
	g.setDown(i, true)
}

// MarkUp restores the shard to routing and clears the operator pin.
// Keys that moved away while it was down move back to exactly their
// original owner: the ring never changed, only the skip set. State the
// temporary owners accumulated moves back with them, so the restored
// shard resumes each device's debounce and dwell where the stand-in
// left off — and the stand-ins stop reporting the device (no stale
// residue inflating the federated count).
func (g *Gateway) MarkUp(i int) {
	g.setDown(i, false)
}

// setDown applies one operator routing change and migrates device
// state across the resulting ownership diff. migrateMu is held across
// the flip AND its migration (acquired before g.mu, never inside it):
// concurrent routing changes — an operator MarkDown racing a probe
// transition — must apply their migrations in the same order as their
// flips, or a stale ownership diff could re-install state onto a
// shard another change just drained.
func (g *Gateway) setDown(i int, down bool) {
	g.migrateMu.Lock()
	defer g.migrateMu.Unlock()
	if i < 0 || i >= len(g.shards) {
		return
	}
	g.applyRoutingChange(func() {
		g.down[i] = down
		g.pinned[i] = down
	})
}

// move is one device's reassignment across a routing change.
type move struct {
	dev      string
	from, to int
}

// applyRoutingChange is the fenced handover protocol — pause → drain →
// move → resume — that makes device migration exact instead of
// self-healing-via-TTL. change mutates g.down (and g.pinned) in place
// under the exclusive routing lock; the new down set is returned.
//
// Under that same exclusive hold the ownership diff is computed and a
// fence is raised for every reassigned device. This one critical
// section closes the two one-report-wide race windows the unfenced
// migration had: no report can resolve an owner under the new table
// before its device's fence is up (so nothing reaches the new owner
// ahead of the install and gets overwritten), and the registry
// snapshot is complete — a report routed under the old table
// registered inside its own shared hold of the routing lock, which
// strictly precedes this exclusive one (so nothing lands on the old
// owner after its eviction).
//
// After the flip, in-flight deliveries for the moving devices are
// drained to zero, each device's state is evicted from its old owner
// and installed on the new one, and the fences lift — paused reports
// then re-resolve routing and land on the new owner, after its state.
//
// Migration remains best effort against dead boxes: an unreachable old
// owner (crash rather than drain) cannot be migrated from, so the new
// owner rebuilds the device from its report stream and whatever
// residue the dead box still holds is reconciled when it returns —
// migrated back by the fail-back rebalance, or aged out by the TTL
// sweep. Callers hold migrateMu.
func (g *Gateway) applyRoutingChange(change func()) []bool {
	g.mu.Lock()
	oldDown := append([]bool(nil), g.down...)
	change()
	newDown := append([]bool(nil), g.down...)
	changed := false
	for i := range oldDown {
		if oldDown[i] != newDown[i] {
			changed = true
			break
		}
	}
	if !changed {
		g.mu.Unlock()
		return newDown
	}
	// The routing inputs changed, so the pre-split contract token must
	// change with them — under the same exclusive hold, so no pre-split
	// upload can match the new digest against the old table or vice
	// versa.
	g.digest = g.ring.Digest(newDown)
	// Registry snapshot under the exclusive routing hold: complete
	// w.r.t. every report ever routed under the old table.
	g.devMu.Lock()
	devices := make([]string, 0, len(g.known))
	for d := range g.known {
		devices = append(devices, d)
	}
	g.devMu.Unlock()
	sort.Strings(devices)
	var moves []move
	for _, dev := range devices {
		h := hash64(dev)
		from, errFrom := g.ownerWith(oldDown, h)
		to, errTo := g.ownerWith(newDown, h)
		if errFrom != nil || errTo != nil || from == to {
			continue
		}
		moves = append(moves, move{dev: dev, from: from, to: to})
		g.fenced[dev] = &fence{done: make(chan struct{})}
	}
	g.mu.Unlock()
	gm := g.met
	if gm != nil {
		for i := range oldDown {
			if oldDown[i] == newDown[i] {
				continue
			}
			kind := obs.EventShardUp
			if newDown[i] {
				kind = obs.EventShardDown
			}
			gm.rec.Record(kind, map[string]any{"shard": g.shards[i].Name()})
		}
	}
	if len(moves) == 0 {
		return newDown
	}
	var migStart time.Time
	if gm != nil {
		migStart = time.Now()
	}
	g.drainMoves(moves)
	g.migrate(moves)
	g.resume(moves)
	if gm != nil {
		gm.migrations.Add(uint64(len(moves)))
		gm.migrateTime.Since(migStart)
		gm.rec.Record(obs.EventMigration, map[string]any{"devices": len(moves)})
	}
	return newDown
}

// drainMoves waits until no shard delivery is in flight for any moving
// device. New deliveries for those devices are already paused on their
// fences, so the counts can only fall.
func (g *Gateway) drainMoves(moves []move) {
	g.devMu.Lock()
	for _, m := range moves {
		for g.flight[m.dev] > 0 {
			g.flightCond.Wait()
		}
	}
	g.devMu.Unlock()
}

// migrate executes the evict→install pairs. Each device's pair stays
// sequential (the mark must leave before it lands), but devices move
// concurrently under a bounded pool: a remote-shard rebalance costs
// O(moves/width × RTT), not one round trip per device in sequence.
// Devices are disjoint and ingest for each is fenced, so the
// concurrent execution is deterministic in effect.
func (g *Gateway) migrate(moves []move) {
	width := migrateConcurrency
	if width > len(moves) {
		width = len(moves)
	}
	var wg sync.WaitGroup
	next := make(chan move)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range next {
				st, ok, err := g.shards[m.from].EvictDevice(m.dev)
				if err != nil || !ok {
					continue // nothing to hand over; the new owner rebuilds
				}
				// A failed install drops the state too — the new owner
				// then rebuilds from the stream, the same degraded path
				// as an unreachable old owner.
				_ = g.shards[m.to].InstallDevice(st)
			}
		}()
	}
	for _, m := range moves {
		next <- m
	}
	close(next)
	wg.Wait()
}

// resume lifts the moving devices' fences; paused reports re-resolve
// routing against the new table.
func (g *Gateway) resume(moves []move) {
	g.mu.Lock()
	for _, m := range moves {
		if f, ok := g.fenced[m.dev]; ok {
			close(f.done)
			delete(g.fenced, m.dev)
		}
	}
	g.mu.Unlock()
}

// migrateConcurrency bounds the parallel evict/install pairs one
// rebalance runs at a time.
const migrateConcurrency = 16

// RebuildRegistry repopulates the gateway's device registry (and its
// report high-water mark) from the shards' own recovered device sets —
// the restart path that lets the gateway itself persist nothing. A
// fresh gateway over durable shards calls this once at boot; a device
// any shard still holds state for is then visible to the next
// rebalance migration and TTL sweep, exactly as if this gateway had
// routed its reports. Down shards are skipped (their devices surface
// when they recover or re-report through the new owner); per-shard
// errors are joined but do not abort the rebuild — the registry is
// additive, so a partial rebuild is strictly better than none.
func (g *Gateway) RebuildRegistry() (devices int, err error) {
	healthy := g.healthyShards()
	perShard := make([][]string, len(healthy))
	errs := make([]error, len(healthy))
	var wg sync.WaitGroup
	for k, i := range healthy {
		wg.Add(1)
		go func(k, i int) {
			defer wg.Done()
			devs, derr := g.shards[i].Devices()
			if derr != nil {
				errs[k] = fmt.Errorf("fleet: shard %s: %w", g.shards[i].Name(), derr)
				return
			}
			perShard[k] = devs
		}(k, i)
	}
	wg.Wait()
	g.devMu.Lock()
	for _, devs := range perShard {
		for _, d := range devs {
			g.known[d] = struct{}{}
		}
	}
	devices = len(g.known)
	g.devMu.Unlock()
	return devices, errors.Join(errs...)
}

// Statuses returns the current routing view without probing.
func (g *Gateway) Statuses() []ShardStatus {
	g.mu.RLock()
	down := append([]bool(nil), g.down...)
	g.mu.RUnlock()
	g.routedMu.Lock()
	routed := append([]int64(nil), g.routed...)
	g.routedMu.Unlock()
	out := make([]ShardStatus, len(g.shards))
	for i, s := range g.shards {
		out[i] = ShardStatus{Name: s.Name(), Down: down[i], Routed: routed[i]}
		g.breakerStatus(i, &out[i])
	}
	return out
}
