// Package fleet is the horizontal-scaling layer above bms: a
// consistent-hash gateway that shards device report streams across a
// pool of BMS servers, distributes trained model snapshots to every
// shard, and federates the per-shard occupancy state back into
// building-level head counts, enter/exit event streams and dwell
// rollups.
//
// Routing is keyed by device id, so one device's timeline always lands
// on one shard and the per-device ordering contract of bms.IngestBatch
// carries through unchanged. Shards hang on a ring of virtual nodes;
// when a shard is marked down its keys — and only its keys — slide to
// the next healthy shard clockwise, which makes rebalancing
// deterministic and minimal. Because every shard debounces and
// timestamps transitions identically, the federated event stream is
// byte-identical to what one big server would have produced for the
// same input (see TestFleetMatchesSingleServer).
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"occusim/internal/bms"
	"occusim/internal/occupancy"
	"occusim/internal/transport"
)

// Config parameterises a Gateway; zero fields take defaults.
type Config struct {
	// Replicas is the number of virtual nodes per shard on the hash
	// ring (default 64). More replicas smooth the key distribution at
	// the cost of a larger ring.
	Replicas int
	// SerialDispatch processes a split batch shard by shard instead of
	// concurrently. Measurement harnesses use it to attribute work to
	// shards exactly; deployments leave it off.
	SerialDispatch bool
	// ProbeInterval rate-limits CheckHealth: calls within the interval
	// of the last probe return the cached statuses instead of fanning a
	// fresh probe to every shard. Gateways that expose CheckHealth on a
	// public health endpoint (fleet.Handler, bmsd -shards) should set
	// this so external polling frequency cannot drive probe fan-out or
	// routing flaps. 0 probes on every call.
	ProbeInterval time.Duration
}

// ErrNoHealthyShards is returned when every shard is down — the
// fleet's terminal routing failure (the HTTP handler maps it to 503).
var ErrNoHealthyShards = errors.New("fleet: no healthy shards")

// ErrShardMisbehaved wraps protocol violations by a shard (a 2xx
// answer with the wrong shape, a short rooms slice): server-side
// faults, never the reporting client's — the HTTP handler maps them to
// 502 so upstream retry policies treat them as transient.
var ErrShardMisbehaved = errors.New("fleet: shard protocol error")

// ringEntry is one virtual node: a point on the hash circle owned by a
// shard.
type ringEntry struct {
	hash  uint64
	shard int
}

// Gateway fronts a pool of shards. It is safe for concurrent use.
type Gateway struct {
	shards   []Shard
	ring     []ringEntry // sorted by hash
	serial   bool
	replicas int

	// mu guards down and pinned; routing takes it shared on every
	// report. pinned marks shards an operator drained with MarkDown:
	// health probes must not resurrect them.
	mu     sync.RWMutex
	down   []bool
	pinned []bool

	// routed counts reports delivered per shard (batch + single).
	routedMu sync.Mutex
	routed   []int64

	// probeMu guards the CheckHealth rate limit (probeEvery > 0).
	probeEvery   time.Duration
	probeMu      sync.Mutex
	lastProbe    time.Time
	lastStatuses []ShardStatus
}

// New builds a gateway over the shards. Shard names must be non-empty
// and distinct: they seed the virtual nodes, and a duplicate name would
// silently merge two shards' arcs.
func New(shards []Shard, cfg Config) (*Gateway, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("fleet: gateway needs at least one shard")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	seen := map[string]bool{}
	for _, s := range shards {
		if s == nil || s.Name() == "" {
			return nil, fmt.Errorf("fleet: nil or unnamed shard")
		}
		if seen[s.Name()] {
			return nil, fmt.Errorf("fleet: duplicate shard name %q", s.Name())
		}
		seen[s.Name()] = true
	}
	g := &Gateway{
		shards:     shards,
		serial:     cfg.SerialDispatch,
		replicas:   cfg.Replicas,
		probeEvery: cfg.ProbeInterval,
		down:       make([]bool, len(shards)),
		pinned:     make([]bool, len(shards)),
		routed:     make([]int64, len(shards)),
	}
	g.ring = make([]ringEntry, 0, len(shards)*cfg.Replicas)
	for i, s := range shards {
		for r := 0; r < cfg.Replicas; r++ {
			g.ring = append(g.ring, ringEntry{
				hash:  hash64(s.Name() + "#" + strconv.Itoa(r)),
				shard: i,
			})
		}
	}
	sort.Slice(g.ring, func(i, j int) bool { return g.ring[i].hash < g.ring[j].hash })
	return g, nil
}

// hash64 is 64-bit FNV-1a finished with the MurmurHash3 avalanche.
// Plain FNV concentrates the difference between short, similar keys
// ("shard-1#7", "crowd-042") in the low bits, which clusters a ring
// sorted on the full value badly enough that one shard's arc can
// swallow every key; the finalizer spreads those bits over the whole
// word, giving the near-uniform arcs consistent hashing assumes.
func hash64(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Shards returns the pool size.
func (g *Gateway) Shards() int { return len(g.shards) }

// ShardFor returns the index of the shard currently owning the device.
func (g *Gateway) ShardFor(device string) (int, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ownerLocked(hash64(device))
}

// ownerLocked walks the ring clockwise from the device's hash to the
// first virtual node of a healthy shard; callers hold g.mu.
func (g *Gateway) ownerLocked(h uint64) (int, error) {
	n := len(g.ring)
	i := sort.Search(n, func(i int) bool { return g.ring[i].hash >= h })
	for k := 0; k < n; k++ {
		e := g.ring[(i+k)%n]
		if !g.down[e.shard] {
			return e.shard, nil
		}
	}
	return -1, ErrNoHealthyShards
}

// Ingest routes one report to its owning shard and returns the
// predicted room.
func (g *Gateway) Ingest(r transport.Report) (string, error) {
	idx, err := g.ShardFor(r.Device)
	if err != nil {
		return "", err
	}
	room, err := g.shards[idx].Ingest(r)
	if err != nil {
		return "", fmt.Errorf("fleet: shard %s: %w", g.shards[idx].Name(), err)
	}
	g.note(idx, 1)
	return room, nil
}

// IngestBatch splits a mixed-device batch into per-shard sub-batches
// (stable split, so each device's reports keep their order), delivers
// them — concurrently unless SerialDispatch — and reassembles the
// predicted rooms into input order. The whole batch is routed against
// one consistent view of shard health; a shard failure fails the call
// and the caller's retry policy (transport.RetryPolicy upstream)
// decides what happens next.
func (g *Gateway) IngestBatch(reports []transport.Report) ([]string, error) {
	if len(reports) == 0 {
		return nil, nil
	}
	perShard := make([][]transport.Report, len(g.shards))
	shardOf := make([]int32, len(reports))
	posOf := make([]int32, len(reports))

	g.mu.RLock()
	for i := range reports {
		idx, err := g.ownerLocked(hash64(reports[i].Device))
		if err != nil {
			g.mu.RUnlock()
			return nil, err
		}
		shardOf[i] = int32(idx)
		posOf[i] = int32(len(perShard[idx]))
		perShard[idx] = append(perShard[idx], reports[i])
	}
	g.mu.RUnlock()

	rooms := make([][]string, len(g.shards))
	errs := make([]error, len(g.shards))
	dispatch := func(idx int) {
		sub := perShard[idx]
		if len(sub) == 0 {
			return
		}
		out, err := g.shards[idx].IngestBatch(sub)
		if err != nil {
			errs[idx] = fmt.Errorf("fleet: shard %s: %w", g.shards[idx].Name(), err)
			return
		}
		if len(out) != len(sub) {
			// A version-skewed or misbehaving shard (an HTTP shard
			// answering 2xx with the wrong shape decodes to a short
			// slice) must fail the batch, not panic the reassembly.
			errs[idx] = fmt.Errorf("%w: shard %s returned %d rooms for %d reports",
				ErrShardMisbehaved, g.shards[idx].Name(), len(out), len(sub))
			return
		}
		rooms[idx] = out
		g.note(idx, int64(len(sub)))
	}
	if g.serial || len(g.shards) == 1 {
		for idx := range g.shards {
			dispatch(idx)
		}
	} else {
		var wg sync.WaitGroup
		for idx := range g.shards {
			if len(perShard[idx]) == 0 {
				continue
			}
			wg.Add(1)
			go func(idx int) {
				defer wg.Done()
				dispatch(idx)
			}(idx)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := make([]string, len(reports))
	for i := range reports {
		out[i] = rooms[shardOf[i]][posOf[i]]
	}
	return out, nil
}

// note bumps the per-shard routed counter.
func (g *Gateway) note(idx int, n int64) {
	g.routedMu.Lock()
	g.routed[idx] += n
	g.routedMu.Unlock()
}

// DistributeModel pushes a trained model snapshot to every shard, so
// classification stays identical fleet-wide. The snapshot must carry a
// positive version: with version 0 each shard's store would bump its
// own counter and the fleet's reported versions would silently diverge.
// Failures are collected per shard and joined; shards that did install
// keep the new model (the caller re-distributes to stragglers after
// they recover).
func (g *Gateway) DistributeModel(snap bms.ModelSnapshot) error {
	if snap.Version <= 0 {
		return fmt.Errorf("fleet: model snapshot must carry a positive version, got %d", snap.Version)
	}
	// Push concurrently: k slow or dead remote shards must cost one
	// install timeout, not k of them in sequence.
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, s := range g.shards {
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			if err := s.InstallModel(snap); err != nil {
				errs[i] = fmt.Errorf("fleet: shard %s: %w", s.Name(), err)
			}
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// healthyShards snapshots the indices currently taking traffic.
func (g *Gateway) healthyShards() []int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int, 0, len(g.shards))
	for i := range g.shards {
		if !g.down[i] {
			out = append(out, i)
		}
	}
	return out
}

// Occupancy merges the healthy shards' head counts and device rooms
// into one building-level snapshot. Device partitions are disjoint, so
// the merge is a union; a down shard's devices are simply absent until
// it recovers or its keys report through their new owner.
func (g *Gateway) Occupancy() (bms.OccupancySnapshot, error) {
	out := bms.OccupancySnapshot{Rooms: map[string]int{}, Devices: map[string]string{}}
	for _, i := range g.healthyShards() {
		snap, err := g.shards[i].Occupancy()
		if err != nil {
			return bms.OccupancySnapshot{}, fmt.Errorf("fleet: shard %s: %w", g.shards[i].Name(), err)
		}
		for room, n := range snap.Rooms {
			out.Rooms[room] += n
		}
		for dev, room := range snap.Devices {
			out.Devices[dev] = room
		}
	}
	return out, nil
}

// Events merges the healthy shards' committed enter/exit streams into
// the fleet-wide event log, time-canonical exactly as occupancy.Sharded
// merges its stripes: nondecreasing time, ties broken by device name,
// one device's same-instant exit/enter pair keeping its in-shard order.
func (g *Gateway) Events() ([]occupancy.Event, error) {
	var all []occupancy.Event
	for _, i := range g.healthyShards() {
		evs, err := g.shards[i].Events()
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %s: %w", g.shards[i].Name(), err)
		}
		all = append(all, evs...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].At != all[j].At {
			return all[i].At < all[j].At
		}
		return all[i].Device < all[j].Device
	})
	return all, nil
}

// DwellTotals sums the healthy shards' per-room dwell rollups.
func (g *Gateway) DwellTotals() (map[string]time.Duration, error) {
	out := map[string]time.Duration{}
	for _, i := range g.healthyShards() {
		totals, err := g.shards[i].DwellTotals()
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %s: %w", g.shards[i].Name(), err)
		}
		for room, d := range totals {
			out[room] += d
		}
	}
	return out, nil
}

// RoomRollup is one room's slice of the fleet-wide occupancy rollup.
type RoomRollup struct {
	// Occupants is the current head count.
	Occupants int `json:"occupants"`
	// Enters and Exits count committed transitions over the fleet's
	// lifetime.
	Enters int `json:"enters"`
	Exits  int `json:"exits"`
	// DwellSeconds is the total time devices have spent in the room.
	DwellSeconds float64 `json:"dwellSeconds"`
}

// Rollup is the live building-level occupancy view the smart-building
// controllers consume: who-is-where collapsed to per-room aggregates.
type Rollup struct {
	// Devices is the fleet-wide tracked device count.
	Devices int `json:"devices"`
	// Events is the fleet-wide committed event count.
	Events int `json:"events"`
	// Rooms maps room name to its aggregates.
	Rooms map[string]RoomRollup `json:"rooms"`
}

// Rollup federates head counts, transition totals and dwell into one
// building-level view.
func (g *Gateway) Rollup() (Rollup, error) {
	snap, err := g.Occupancy()
	if err != nil {
		return Rollup{}, err
	}
	events, err := g.Events()
	if err != nil {
		return Rollup{}, err
	}
	dwell, err := g.DwellTotals()
	if err != nil {
		return Rollup{}, err
	}
	out := Rollup{Devices: len(snap.Devices), Events: len(events), Rooms: map[string]RoomRollup{}}
	for room, n := range snap.Rooms {
		r := out.Rooms[room]
		r.Occupants = n
		out.Rooms[room] = r
	}
	for _, e := range events {
		r := out.Rooms[e.Room]
		if e.Kind == occupancy.Enter {
			r.Enters++
		} else {
			r.Exits++
		}
		out.Rooms[e.Room] = r
	}
	for room, d := range dwell {
		r := out.Rooms[room]
		r.DwellSeconds = d.Seconds()
		out.Rooms[room] = r
	}
	return out, nil
}

// ShardStatus is one shard's state from the gateway's point of view.
type ShardStatus struct {
	Name string `json:"name"`
	Down bool   `json:"down"`
	// Routed counts reports delivered to the shard by this gateway.
	Routed int64 `json:"routed"`
	// Err is the last health-check failure ("" when healthy).
	Err string `json:"err,omitempty"`
}

// CheckHealth probes every shard and updates the routing table: a
// failing shard is marked down (its keys slide to the next healthy
// shard on the ring), a recovering shard is marked up (its keys slide
// back — the same minimal, deterministic movement in reverse). The
// statuses reflect this probe.
func (g *Gateway) CheckHealth() []ShardStatus {
	// Rate limit: within ProbeInterval of the last probe, answer from
	// the cache so external health polling cannot drive probe fan-out.
	// probeMu is held across the probe itself, so concurrent pollers
	// arriving just past the interval queue behind one prober and get
	// its fresh cache instead of each fanning their own sweep.
	if g.probeEvery > 0 {
		g.probeMu.Lock()
		defer g.probeMu.Unlock()
		if !g.lastProbe.IsZero() && time.Since(g.lastProbe) < g.probeEvery {
			return append([]ShardStatus(nil), g.lastStatuses...)
		}
	}
	out := g.probeAll()
	if g.probeEvery > 0 {
		g.lastProbe = time.Now()
		g.lastStatuses = append([]ShardStatus(nil), out...)
	}
	return out
}

// probeAll performs one live health sweep and updates routing.
func (g *Gateway) probeAll() []ShardStatus {
	// Probe concurrently: k dead remote shards must cost one probe
	// timeout, not k of them in sequence. Operator-drained shards
	// (MarkDown) are not probed and never resurrected by a probe — only
	// MarkUp returns them to routing.
	g.mu.RLock()
	pinned := append([]bool(nil), g.pinned...)
	g.mu.RUnlock()
	errs := make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, s := range g.shards {
		if pinned[i] {
			errs[i] = errors.New("drained by operator")
			continue
		}
		wg.Add(1)
		go func(i int, s Shard) {
			defer wg.Done()
			errs[i] = s.Health()
		}(i, s)
	}
	wg.Wait()
	out := make([]ShardStatus, len(g.shards))
	g.mu.Lock()
	for i := range g.shards {
		g.down[i] = g.pinned[i] || errs[i] != nil
	}
	down := append([]bool(nil), g.down...)
	g.mu.Unlock()
	g.routedMu.Lock()
	routed := append([]int64(nil), g.routed...)
	g.routedMu.Unlock()
	for i, s := range g.shards {
		out[i] = ShardStatus{Name: s.Name(), Down: down[i], Routed: routed[i]}
		if errs[i] != nil {
			out[i].Err = errs[i].Error()
		}
	}
	return out
}

// MarkDown drains the shard: it leaves routing immediately and stays
// out across health probes until MarkUp — a probe must not resurrect a
// box an operator is working on.
func (g *Gateway) MarkDown(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i >= 0 && i < len(g.down) {
		g.down[i] = true
		g.pinned[i] = true
	}
}

// MarkUp restores the shard to routing and clears the operator pin.
// Keys that moved away while it was down move back to exactly their
// original owner: the ring never changed, only the skip set.
func (g *Gateway) MarkUp(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i >= 0 && i < len(g.down) {
		g.down[i] = false
		g.pinned[i] = false
	}
}

// Statuses returns the current routing view without probing.
func (g *Gateway) Statuses() []ShardStatus {
	g.mu.RLock()
	down := append([]bool(nil), g.down...)
	g.mu.RUnlock()
	g.routedMu.Lock()
	routed := append([]int64(nil), g.routed...)
	g.routedMu.Unlock()
	out := make([]ShardStatus, len(g.shards))
	for i, s := range g.shards {
		out[i] = ShardStatus{Name: s.Name(), Down: down[i], Routed: routed[i]}
	}
	return out
}
