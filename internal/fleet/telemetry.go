// Gateway telemetry: per-shard send latency, batch split/reassembly
// timing, migration and breaker activity, and the leadership epoch —
// the fleet-side half of the flight-recorder story (the shards record
// their own grants and fences in internal/bms). Routed counts, breaker
// trips and gate occupancy are func-backed: the gateway already keeps
// them, so scrapes read them and the dispatch path stays untouched.
package fleet

import (
	"occusim/internal/obs"
)

// gatewayMetrics bundles the gateway's telemetry handles; nil (the
// default) keeps every instrumented site at one predictable branch.
type gatewayMetrics struct {
	reg *obs.Metrics

	sendLatency []*obs.Histogram // per shard: one sub-batch delivery
	splitTime   *obs.Histogram   // routing + per-shard split of one batch
	reassembly  *obs.Histogram   // room reassembly into input order
	batchSize   *obs.Histogram   // reports per gateway batch
	migrations  *obs.Counter     // devices migrated across routing changes
	migrateTime *obs.Histogram   // one fenced handover, drain to resume

	presplitForwarded *obs.Counter // device-split uploads forwarded verbatim
	presplitDigestMiss *obs.Counter // pre-split uploads re-split server-side

	rec *obs.Recorder
}

// Instrument registers the gateway's telemetry on m and starts feeding
// it. Call at process wiring, before serving traffic; also instruments
// the admission gate ("fleet_gate"). A nil m is a no-op.
func (g *Gateway) Instrument(m *obs.Metrics) {
	if m == nil {
		return
	}
	gm := &gatewayMetrics{
		reg:         m,
		splitTime:   m.Timing("fleet_split_seconds", "batch routing and per-shard split time"),
		reassembly:  m.Timing("fleet_reassembly_seconds", "room reassembly into input order"),
		batchSize:   m.Sizes("fleet_ingest_batch_size", "reports per gateway batch"),
		migrations:  m.Counter("fleet_migrations_total", "devices migrated across routing changes"),
		migrateTime: m.Timing("fleet_migration_seconds", "fenced handover duration, drain to resume"),
		presplitForwarded: m.Counter("fleet_presplit_forwarded_total",
			"device-split uploads forwarded frame-verbatim to their shards"),
		presplitDigestMiss: m.Counter("fleet_presplit_digest_miss_total",
			"pre-split uploads whose ring digest was stale, re-split server-side"),
		rec: m.Recorder(),
	}
	gm.sendLatency = make([]*obs.Histogram, len(g.shards))
	for i, s := range g.shards {
		i, name := i, s.Name()
		gm.sendLatency[i] = m.Timing("fleet_send_seconds", "one sub-batch delivery to the shard", obs.L("shard", name))
		m.CounterFunc("fleet_routed_total", "reports delivered to the shard", func() float64 {
			g.routedMu.Lock()
			defer g.routedMu.Unlock()
			return float64(g.routed[i])
		}, obs.L("shard", name))
		if g.breakers != nil {
			m.CounterFunc("fleet_breaker_trips_total", "times the shard's circuit opened", func() float64 {
				_, trips := g.breakers[i].snapshot()
				return float64(trips)
			}, obs.L("shard", name))
			m.GaugeFunc("fleet_breaker_state", "shard circuit state: 0 closed, 1 half-open, 2 open", func() float64 {
				state, _ := g.breakers[i].snapshot()
				switch state {
				case breakerOpen:
					return 2
				case breakerHalfOpen:
					return 1
				default:
					return 0
				}
			}, obs.L("shard", name))
		}
	}
	m.GaugeFunc("fleet_epoch", "gateway leadership epoch stamped on shard writes (0 = unfenced)", func() float64 {
		return float64(g.Epoch())
	})
	g.gate.Instrument(m, "fleet_gate")
	g.met = gm
}

// Metrics returns the registry Instrument installed (nil before).
func (g *Gateway) Metrics() *obs.Metrics {
	if g.met == nil {
		return nil
	}
	return g.met.reg
}
