// Binary HTTP face of the gateway: the wire-codec branch of the batch
// ingest route and the published routing table (GET /api/v1/ring) that
// devices pre-split against. JSON stays the compatibility face — a
// request without the wire content type takes the historical path
// untouched.
package fleet

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"occusim/internal/transport"
	"occusim/internal/wire"
)

// isWireContent reports whether the request body is a wire frame (or
// pre-split sections of them).
func isWireContent(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == wire.ContentType || strings.HasPrefix(ct, wire.ContentType+";")
}

// readBody drains the request body into the pooled buffer.
func readBody(r io.Reader, dst *[]byte) ([]byte, error) {
	b := (*dst)[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			*dst = b
			return b, nil
		}
		if err != nil {
			*dst = b
			return nil, err
		}
	}
}

// notePresplitMiss counts a pre-split upload re-split server-side.
func (g *Gateway) notePresplitMiss() {
	if gm := g.met; gm != nil {
		gm.presplitDigestMiss.Inc()
	}
}

// handleWireBatch serves POST /api/v1/observations:batch for the
// binary codec: a plain frame decodes and takes the ordinary batch
// path; sections under a matching ring digest forward verbatim, and
// under a stale one decode in section order and re-split server-side —
// the response is the same rooms array either way, so the device never
// learns (or cares) which path ran.
func handleWireBatch(g *Gateway, opts HandlerOptions, w http.ResponseWriter, r *http.Request) {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	body, err := readBody(r.Body, buf)
	if err != nil {
		fleetError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	if opts.Lease != nil && !opts.Lease.Active() {
		fleetStandbyError(w, opts.Lease)
		return
	}
	digest := r.Header.Get(wire.HeaderRingDigest)
	if digest == "" {
		// One plain frame: decode and split server-side, the gateway's
		// historical job, minus the JSON parse.
		b := wire.GetBatch()
		defer wire.PutBatch(b)
		if err := wire.DecodeFrame(body, b); err != nil {
			fleetError(w, http.StatusBadRequest, fmt.Errorf("decode frame: %w", err))
			return
		}
		serveIngestBatch(g, opts, w, transport.DecodeReports(b, nil))
		return
	}
	var secs []PresplitSection
	if err := wire.ScanSections(body, func(shard, frame, payload []byte) error {
		secs = append(secs, PresplitSection{Shard: string(shard), Frame: frame, Payload: payload})
		return nil
	}); err != nil {
		fleetError(w, http.StatusBadRequest, fmt.Errorf("decode sections: %w", err))
		return
	}
	rooms, err := g.IngestPresplit(digest, secs)
	if err == nil {
		out := []string{}
		for _, sub := range rooms {
			out = append(out, sub...)
		}
		fleetJSON(w, http.StatusOK, map[string]any{"rooms": out})
		return
	}
	if !errors.Is(err, ErrPresplitMismatch) {
		if opts.Lease != nil {
			opts.Lease.ObserveStale(err)
		}
		fleetIngestError(w, err)
		return
	}
	// Stale digest (or a shard that cannot take frames): re-split
	// server-side from the decoded sections. Report order is section
	// order, which is how the device assembled the upload, so the rooms
	// array still answers report-for-report.
	g.notePresplitMiss()
	b := wire.GetBatch()
	defer wire.PutBatch(b)
	var reports []transport.Report
	for k := range secs {
		b.Reset()
		if err := wire.DecodePayload(secs[k].Payload, b); err != nil {
			fleetError(w, http.StatusBadRequest, fmt.Errorf("decode section %q: %w", secs[k].Shard, err))
			return
		}
		reports = transport.DecodeReports(b, reports)
	}
	serveIngestBatch(g, opts, w, reports)
}

// serveIngestBatch runs the decoded batch path and writes the answer —
// shared by the JSON route and every wire fallback.
func serveIngestBatch(g *Gateway, opts HandlerOptions, w http.ResponseWriter, reports []transport.Report) {
	rooms, err := g.IngestBatch(reports)
	if err != nil {
		if opts.Lease != nil {
			opts.Lease.ObserveStale(err)
		}
		fleetIngestError(w, err)
		return
	}
	if rooms == nil {
		rooms = []string{}
	}
	fleetJSON(w, http.StatusOK, map[string]any{"rooms": rooms})
}
