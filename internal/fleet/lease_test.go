package fleet_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"occusim/internal/bms"
	"occusim/internal/building"
	"occusim/internal/fleet"
)

// twinGateways builds two gateways over ONE set of shard servers, each
// with its OWN shard clients — the epoch stamp is per-client identity
// in the fencing protocol, so an active/standby pair must never share
// clients.
func twinGateways(t *testing.T, b *building.Building, n int) (*fleet.LocalPool, *fleet.Gateway, *fleet.Gateway) {
	t.Helper()
	pool, err := fleet.NewLocalPool(b, n, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	shardsB := make([]fleet.Shard, len(pool.Servers))
	for i, srv := range pool.Servers {
		ls, err := fleet.NewLocalShard(fmt.Sprintf("shard-%d", i), srv)
		if err != nil {
			t.Fatal(err)
		}
		shardsB[i] = ls
	}
	gwA, err := fleet.New(pool.Shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	gwB, err := fleet.New(shardsB, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return pool, gwA, gwB
}

func controller(t *testing.T, gw *fleet.Gateway, self string) *fleet.LeaseController {
	t.Helper()
	ctl, err := fleet.NewLeaseController(gw, fleet.LeaseConfig{
		Self:  self,
		Probe: func() error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

func TestLeaseClaimRenewDepose(t *testing.T) {
	b := building.PaperHouse()
	pool, gwA, gwB := twinGateways(t, b, 3)
	ctlA := controller(t, gwA, "http://gwA")
	ctlB := controller(t, gwB, "http://gwB")

	if err := ctlA.Claim(); err != nil {
		t.Fatalf("bootstrap claim: %v", err)
	}
	if !ctlA.Active() || ctlA.Epoch() != 1 {
		t.Fatalf("A active=%v epoch=%d", ctlA.Active(), ctlA.Epoch())
	}
	if gwA.Epoch() != 1 {
		t.Fatalf("A gateway stamp = %d", gwA.Epoch())
	}
	for i, srv := range pool.Servers {
		if epoch, holder := srv.GrantedLease(); epoch != 1 || holder != "http://gwA" {
			t.Fatalf("shard-%d grant = %d/%q", i, epoch, holder)
		}
	}
	if err := ctlA.Renew(); err != nil {
		t.Fatalf("renew while leading: %v", err)
	}

	// B outbids: its epoch-1 bid loses to A's grant, so it re-bids 2
	// within the same Claim call and wins.
	if err := ctlB.Claim(); err != nil {
		t.Fatalf("takeover claim: %v", err)
	}
	if !ctlB.Active() || ctlB.Epoch() != 2 {
		t.Fatalf("B active=%v epoch=%d", ctlB.Active(), ctlB.Epoch())
	}

	// A's next renewal loses quorum and steps it down, learning where
	// leadership went.
	if err := ctlA.Renew(); err == nil {
		t.Fatal("deposed renewal must fail")
	}
	if ctlA.Active() {
		t.Fatal("A still active after losing its lease")
	}
	if hint := ctlA.LeaderHint(); hint != "http://gwB" {
		t.Fatalf("A leader hint = %q", hint)
	}

	// And A's gateway is a zombie shard-side: every write fenced.
	stream := synthStream(b, 2, 2, 5)
	stampStream(stream, 1)
	if _, err := gwA.IngestBatch(stream); !errors.Is(err, bms.ErrStaleLeader) {
		t.Fatalf("zombie batch: err=%v", err)
	}
	if _, err := gwB.IngestBatch(stream); err != nil {
		t.Fatalf("leader batch: %v", err)
	}
}

func TestLeaseObserveStaleDeposesZombie(t *testing.T) {
	b := building.PaperHouse()
	_, gwA, gwB := twinGateways(t, b, 3)
	ctlA := controller(t, gwA, "http://gwA")
	ctlB := controller(t, gwB, "http://gwB")

	if err := ctlA.Claim(); err != nil {
		t.Fatal(err)
	}
	if err := ctlB.Claim(); err != nil {
		t.Fatal(err)
	}

	// A has not renewed yet — it still believes it leads. Its first
	// fenced write is how it finds out.
	if !ctlA.Active() {
		t.Fatal("setup: A must still believe it leads")
	}
	stream := synthStream(b, 1, 1, 7)
	stampStream(stream, 1)
	_, err := gwA.Ingest(stream[0])
	if !errors.Is(err, bms.ErrStaleLeader) {
		t.Fatalf("zombie ingest: err=%v", err)
	}
	ctlA.ObserveStale(err)
	if ctlA.Active() {
		t.Fatal("A still active after a fenced write")
	}
	if hint := ctlA.LeaderHint(); hint != "http://gwB" {
		t.Fatalf("hint after fencing = %q", hint)
	}
	// Non-stale errors must not depose.
	ctlB.ObserveStale(fmt.Errorf("some shard hiccup"))
	if !ctlB.Active() {
		t.Fatal("B deposed by an unrelated error")
	}
}

// deafShard loses its lease arbiter (the claim RPC fails) but keeps
// serving writes — a shard behind a partial partition.
type deafShard struct{ fleet.Shard }

func (d deafShard) Claim(epoch uint64, leader string) (uint64, string, error) {
	return 0, "", fmt.Errorf("claim lost in the network")
}

func TestLeaseClaimNeedsShardQuorum(t *testing.T) {
	b := building.PaperHouse()
	pool, err := fleet.NewLocalPool(b, 3, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}

	// 2 of 3 arbiters unreachable: no quorum, no leadership.
	shards := []fleet.Shard{deafShard{pool.Shards[0]}, deafShard{pool.Shards[1]}, pool.Shards[2]}
	gw, err := fleet.New(shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctl := controller(t, gw, "http://gw")
	if err := ctl.Claim(); err == nil {
		t.Fatal("claim without a shard quorum must fail")
	}
	if ctl.Active() {
		t.Fatal("active without a quorum")
	}

	// 1 of 3 unreachable: 2/3 is a majority — leadership holds.
	shards = []fleet.Shard{deafShard{pool.Shards[0]}, pool.Shards[1], pool.Shards[2]}
	gw, err = fleet.New(shards, fleet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ctl = controller(t, gw, "http://gw")
	if err := ctl.Claim(); err != nil {
		t.Fatalf("claim with a 2/3 quorum: %v", err)
	}
	if !ctl.Active() {
		t.Fatal("not active despite quorum")
	}
}

// TestLeaseRunStandbyTakeover drives the Run loop: a standby holds
// back while its probe sees a live active, then claims after the
// configured consecutive misses.
func TestLeaseRunStandbyTakeover(t *testing.T) {
	b := building.PaperHouse()
	pool, gwA, gwB := twinGateways(t, b, 3)
	ctlA := controller(t, gwA, "http://gwA")
	if err := ctlA.Claim(); err != nil {
		t.Fatal(err)
	}

	var peerDown chan struct{} = make(chan struct{})
	ctlB, err := fleet.NewLeaseController(gwB, fleet.LeaseConfig{
		Self:         "http://gwB",
		TTL:          90 * time.Millisecond,
		MissedProbes: 2,
		Probe: func() error {
			select {
			case <-peerDown:
				return fmt.Errorf("peer refused")
			default:
				return nil
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go ctlB.Run(stop)

	// While the active answers probes, the standby must not claim.
	time.Sleep(300 * time.Millisecond)
	if ctlB.Active() {
		t.Fatal("standby claimed while the active was healthy")
	}
	if epoch, _ := pool.Servers[0].GrantedLease(); epoch != 1 {
		t.Fatalf("grant moved to %d during healthy standby", epoch)
	}

	// Kill the active (as the probe sees it). Within a few ticks the
	// standby must claim the next epoch.
	close(peerDown)
	deadline := time.Now().Add(5 * time.Second)
	for !ctlB.Active() {
		if time.Now().After(deadline) {
			t.Fatal("standby never took over after probe misses")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ctlB.Epoch() != 2 {
		t.Fatalf("takeover epoch = %d", ctlB.Epoch())
	}
	// The deposed active's writes are now fenced.
	stream := synthStream(b, 1, 1, 3)
	stampStream(stream, 1)
	if _, err := gwA.Ingest(stream[0]); !errors.Is(err, bms.ErrStaleLeader) {
		t.Fatalf("deposed active's write: err=%v", err)
	}
}
