package transport

import (
	"fmt"
	"sync"
	"testing"
)

// TestSequencerStamps pins the client half of exactly-once: per-device
// monotonic seqs starting at 1, the sequencer's epoch on every stamp,
// and pre-sequenced reports passing through untouched.
func TestSequencerStamps(t *testing.T) {
	q := NewSequencer(3)
	a1 := Report{Device: "a", AtSeconds: 1}
	a2 := Report{Device: "a", AtSeconds: 2}
	b1 := Report{Device: "b", AtSeconds: 1}
	q.Stamp(&a1)
	q.Stamp(&b1)
	q.Stamp(&a2)
	if a1.Seq != 1 || a2.Seq != 2 || b1.Seq != 1 {
		t.Fatalf("seqs = a1:%d a2:%d b1:%d, want 1, 2, 1", a1.Seq, a2.Seq, b1.Seq)
	}
	if a1.Epoch != 3 || b1.Epoch != 3 {
		t.Fatalf("epochs = %d, %d, want 3", a1.Epoch, b1.Epoch)
	}
	pre := Report{Device: "a", Epoch: 9, Seq: 42}
	q.Stamp(&pre)
	if pre.Seq != 42 || pre.Epoch != 9 {
		t.Fatalf("pre-sequenced report was re-stamped: %+v", pre)
	}
	next := Report{Device: "a"}
	q.Stamp(&next)
	if next.Seq != 3 {
		t.Fatalf("counter disturbed by pass-through: seq = %d, want 3", next.Seq)
	}
}

// TestSequencerConcurrent pins that concurrent stamping of one device
// yields each seq exactly once (run under -race in CI).
func TestSequencerConcurrent(t *testing.T) {
	q := NewSequencer(1)
	const n = 64
	seqs := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := Report{Device: "p"}
			q.Stamp(&r)
			seqs[i] = r.Seq
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, s := range seqs {
		if s < 1 || s > n || seen[s] {
			t.Fatalf("seq %d duplicated or out of range", s)
		}
		seen[s] = true
	}
}

// seqCapture records every batch the uplink delivers and fails on
// command, for retransmission-identity checks.
type seqCapture struct {
	fail    bool
	batches [][]Report
}

func (c *seqCapture) Name() string { return "capture" }
func (c *seqCapture) Send(Report) error {
	return fmt.Errorf("capture: Send not expected — batch path only")
}
func (c *seqCapture) SendBatch(reports []Report) error {
	cp := make([]Report, len(reports))
	copy(cp, reports)
	c.batches = append(c.batches, cp)
	if c.fail {
		return fmt.Errorf("capture: injected failure")
	}
	return nil
}

// TestBatchingUplinkStampsOnce pins where sequencing happens: at Send
// (enqueue) time. A failed flush retransmits byte-identical (Epoch,
// Seq) identities — the property the server-side dedup needs to make
// the retry a no-op — and newly queued reports continue the sequence.
func TestBatchingUplinkStampsOnce(t *testing.T) {
	sink := &seqCapture{fail: true}
	bu, err := NewBatchingUplink(sink, BatchConfig{
		MaxBatch:  2,
		Sequencer: NewSequencer(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two sends reach MaxBatch and flush into the injected failure.
	_ = bu.Send(Report{Device: "p", AtSeconds: 1})
	if err := bu.Send(Report{Device: "p", AtSeconds: 2}); err == nil {
		t.Fatal("failed flush should surface")
	}
	// Recovery: the retransmission plus one new report.
	sink.fail = false
	_ = bu.Send(Report{Device: "p", AtSeconds: 3})
	if err := bu.Flush(); err != nil {
		t.Fatal(err)
	}

	if len(sink.batches) < 2 {
		t.Fatalf("expected a failed and a successful batch, got %d", len(sink.batches))
	}
	first, last := sink.batches[0], sink.batches[len(sink.batches)-1]
	if first[0].Seq != 1 || first[1].Seq != 2 {
		t.Fatalf("first flush seqs = %d, %d, want 1, 2", first[0].Seq, first[1].Seq)
	}
	// The retransmitted head of the last batch is identical to the
	// failed attempt; the tail continues the sequence.
	if last[0].Seq != 1 || last[1].Seq != 2 || last[2].Seq != 3 {
		t.Fatalf("retransmit seqs = %d, %d, %d, want 1, 2, 3", last[0].Seq, last[1].Seq, last[2].Seq)
	}
	for _, r := range last {
		if r.Epoch != 5 {
			t.Fatalf("epoch = %d, want 5", r.Epoch)
		}
	}
}
