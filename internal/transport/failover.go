package transport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"occusim/internal/wire"
)

// FailoverUplink posts reports to an active/standby gateway pair (or
// any list of equivalent ingest frontends), following leadership as it
// moves:
//
//   - A 409 stale-leader answer carrying a leader hint switches to the
//     hinted URL IMMEDIATELY — no backoff, no retry-budget spend. The
//     hint comes from the shard quorum's own grant record, so the
//     hinted target is the leader by the arbiter's account; sleeping
//     before following it only prolongs the outage.
//   - A connection failure, timeout, exhausted per-target retry, or
//     hint-less 409 rotates to the next configured target.
//
// The uplink sticks to whichever target last succeeded, so steady
// state costs nothing extra; hops are bounded per send so a deposed
// pair pointing hints at each other cannot loop forever. Safe for
// concurrent use.
type FailoverUplink struct {
	// Client defaults to a 5-second-per-attempt client when nil (see
	// DoJSON).
	Client *http.Client
	// Retry bounds retransmission against ONE target; failing over to
	// the next target starts a fresh policy run.
	Retry RetryPolicy
	// Codec picks the batch encoding (see HTTPUplink.Codec). The 415
	// downgrade is per target: an old gateway in the pair falls back to
	// JSON while its binary-speaking partner keeps the fast codec.
	Codec Codec

	mu        sync.Mutex
	targets   []string
	cur       int
	redirects uint64 // 409 leader-hint switches
	rotations uint64 // next-target rotations (refused/exhausted)
	jsonOnly  map[string]bool
}

// NewFailoverUplink builds an uplink over the given gateway base URLs
// (e.g. "http://127.0.0.1:8080"), preferring them in order.
func NewFailoverUplink(targets []string, client *http.Client, retry RetryPolicy) (*FailoverUplink, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("transport: failover uplink needs at least one target")
	}
	u := &FailoverUplink{Client: client, Retry: retry}
	u.targets = append(u.targets, targets...)
	return u, nil
}

// Name implements Uplink.
func (u *FailoverUplink) Name() string { return "wifi-http-failover" }

// Send implements Uplink. Binary mode delivers a one-report batch (see
// HTTPUplink.Send).
func (u *FailoverUplink) Send(r Report) error {
	if u.Codec == CodecBinary {
		return u.postBatch([]Report{r})
	}
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("transport: marshal report: %w", err)
	}
	return u.post("/api/v1/observations", body)
}

// SendBatch implements BatchSender. A retried or failed-over POST
// carries the identical body, so batch order and identity survive the
// handover — the shards' seq marks dedupe whatever landed twice.
func (u *FailoverUplink) SendBatch(reports []Report) error {
	return u.postBatch(reports)
}

// postBatch delivers a batch under the configured codec. Binary
// encoding happens once per send, not per hop — every target sees the
// identical frame; targets that answered 415 before get JSON instead.
func (u *FailoverUplink) postBatch(reports []Report) error {
	if u.Codec != CodecBinary {
		body, err := json.Marshal(reports)
		if err != nil {
			return fmt.Errorf("transport: marshal batch: %w", err)
		}
		err = u.post("/api/v1/observations:batch", body)
		if err == nil {
			wireCount("json")
		}
		return err
	}
	b := wire.GetBatch()
	defer wire.PutBatch(b)
	if err := EncodeReports(b, reports); err != nil {
		// Unencodable identity: JSON carries anything.
		body, jerr := json.Marshal(reports)
		if jerr != nil {
			return fmt.Errorf("transport: marshal batch: %w", jerr)
		}
		return u.post("/api/v1/observations:batch", body)
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	*buf = wire.AppendFrame(*buf, b)
	jsonBody := func() ([]byte, error) { return json.Marshal(reports) }
	err := u.postNegotiated("/api/v1/observations:batch", *buf, jsonBody)
	if err == nil {
		wireCount("binary")
	}
	return err
}

// Target returns the URL the next send will try first.
func (u *FailoverUplink) Target() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.targets[u.cur]
}

// Stats returns lifetime (leader-hint redirects, target rotations).
func (u *FailoverUplink) Stats() (redirects, rotations uint64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.redirects, u.rotations
}

// post delivers one JSON payload over the failover hop loop.
func (u *FailoverUplink) post(path string, body []byte) error {
	return u.hop(func(base string) error {
		_, err := PostJSON(u.Client, base+path, body, u.Retry)
		return err
	})
}

// postNegotiated delivers a binary frame over the hop loop, with
// per-target content negotiation: a target that ever answered 415 is
// remembered and gets the JSON rendering (built lazily, at most once)
// on this and every later send.
func (u *FailoverUplink) postNegotiated(path string, frame []byte, jsonBody func() ([]byte, error)) error {
	var jb []byte // lazy JSON rendering, shared across hops
	renderJSON := func() ([]byte, error) {
		if jb == nil {
			var err error
			if jb, err = jsonBody(); err != nil {
				return nil, err
			}
		}
		return jb, nil
	}
	return u.hop(func(base string) error {
		if u.targetJSONOnly(base) {
			body, err := renderJSON()
			if err != nil {
				return err
			}
			_, err = PostJSON(u.Client, base+path, body, u.Retry)
			return err
		}
		hdr := map[string]string{"Content-Type": wire.ContentType}
		_, err := DoJSONHeaders(u.Client, http.MethodPost, base+path, frame, hdr, u.Retry)
		if isUnsupportedMedia(err) {
			// Old frontend: downgrade THIS target for good and resend
			// the same batch as JSON before giving up on it.
			u.markJSONOnly(base)
			noteDowngrade()
			body, jerr := renderJSON()
			if jerr != nil {
				return jerr
			}
			_, err = PostJSON(u.Client, base+path, body, u.Retry)
		}
		return err
	})
}

// targetJSONOnly reports whether base was sticky-downgraded to JSON.
func (u *FailoverUplink) targetJSONOnly(base string) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.jsonOnly[base]
}

// markJSONOnly pins base to the JSON codec for the uplink's lifetime.
func (u *FailoverUplink) markJSONOnly(base string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.jsonOnly == nil {
		u.jsonOnly = map[string]bool{}
	}
	u.jsonOnly[base] = true
}

// hop runs one delivery attempt per target, hopping until success or
// the hop budget runs out. lastErr is whatever the final target
// answered.
func (u *FailoverUplink) hop(do func(base string) error) error {
	u.mu.Lock()
	base := u.targets[u.cur]
	// Every configured target twice (leadership may move mid-send)
	// plus slack for hint redirects to URLs outside the list.
	maxHops := 2*len(u.targets) + 2
	u.mu.Unlock()

	var lastErr error
	for hop := 0; hop < maxHops; hop++ {
		err := do(base)
		if err == nil {
			u.commit(base)
			return nil
		}
		lastErr = err
		if code, ok := StatusCode(err); ok && code == http.StatusConflict {
			if hint, ok := LeaderHint(err); ok && hint != base {
				// Deposed target named the leader: go there now.
				u.mu.Lock()
				u.redirects++
				u.mu.Unlock()
				if tm := pkgMet.Load(); tm != nil {
					tm.redirects.Inc()
				}
				base = hint
				continue
			}
		}
		base = u.rotate(base)
	}
	return fmt.Errorf("transport: all gateway targets failed: %w", lastErr)
}

// commit pins future sends to the target that just worked, learning
// hinted URLs that were not configured.
func (u *FailoverUplink) commit(base string) {
	u.mu.Lock()
	defer u.mu.Unlock()
	for i, t := range u.targets {
		if t == base {
			u.cur = i
			return
		}
	}
	u.targets = append(u.targets, base)
	u.cur = len(u.targets) - 1
}

// rotate advances to the configured target after the one that just
// failed (falling back to round-robin from the sticky index when the
// failure was at a hinted, unlisted URL).
func (u *FailoverUplink) rotate(failed string) string {
	if tm := pkgMet.Load(); tm != nil {
		tm.rotations.Inc()
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.rotations++
	next := (u.cur + 1) % len(u.targets)
	for i, t := range u.targets {
		if t == failed {
			next = (i + 1) % len(u.targets)
			break
		}
	}
	u.cur = next
	return u.targets[next]
}
