package transport

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"occusim/internal/ring"
	"occusim/internal/wire"
)

// wireReports builds n sequenced reports across a few devices.
func wireReports(n int) []Report {
	out := make([]Report, n)
	for i := range out {
		out[i] = Report{
			Device:    fmt.Sprintf("phone-%d", i%4),
			AtSeconds: float64(i),
			Epoch:     1,
			Seq:       uint64(i + 1),
			Beacons: []BeaconReport{
				{ID: fmt.Sprintf("C0FFEE00-BEEF-4A11-8000-%012d/1/%d", i%8, i%8), Distance: 1.5, RSSI: -60},
			},
		}
	}
	return out
}

// codecCounter tallies batch POSTs by declared content type.
type codecCounter struct {
	mu           sync.Mutex
	wirePosts    int
	jsonPosts    int
	lastDigest   string
	lastSections []string
}

func (c *codecCounter) snapshot() (wirePosts, jsonPosts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wirePosts, c.jsonPosts
}

// jsonOnlyServer answers 415 to wire frames — a pre-PR10 server.
func jsonOnlyServer(t *testing.T, c *codecCounter, ingested *[][]Report) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/ring" {
			http.NotFound(w, r)
			return
		}
		if r.Header.Get("Content-Type") == wire.ContentType {
			c.mu.Lock()
			c.wirePosts++
			c.mu.Unlock()
			http.Error(w, "unsupported media type", http.StatusUnsupportedMediaType)
			return
		}
		var batch []Report
		if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		c.jsonPosts++
		if ingested != nil {
			*ingested = append(*ingested, batch)
		}
		c.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
}

func TestHTTPUplinkSticky415Downgrade(t *testing.T) {
	c := &codecCounter{}
	var got [][]Report
	srv := jsonOnlyServer(t, c, &got)
	defer srv.Close()

	// A retry policy with budget: the 415 must come back after exactly
	// one attempt anyway (non-429 4xx is permanent), not burn retries.
	u := &HTTPUplink{BaseURL: srv.URL, Retry: RetryPolicy{MaxAttempts: 5}, Codec: CodecBinary}
	reports := wireReports(6)
	for i := 0; i < 3; i++ {
		if err := u.SendBatch(reports); err != nil {
			t.Fatalf("SendBatch %d: %v", i, err)
		}
	}
	wirePosts, jsonPosts := c.snapshot()
	if wirePosts != 1 {
		t.Fatalf("server saw %d wire attempts, want exactly 1 (sticky downgrade, no retry burn)", wirePosts)
	}
	if jsonPosts != 3 {
		t.Fatalf("server saw %d JSON batches, want 3 (the downgraded resend plus two sticky sends)", jsonPosts)
	}
	if len(got) != 3 || len(got[0]) != len(reports) {
		t.Fatalf("ingested %d batches, first of %d reports; want 3 × %d", len(got), len(got[0]), len(reports))
	}
	if got[0][2].Device != reports[2].Device || got[0][2].Seq != reports[2].Seq {
		t.Fatalf("downgraded resend diverged: %+v vs %+v", got[0][2], reports[2])
	}
}

func TestHTTPUplinkBinaryAgainstWireServer(t *testing.T) {
	var decoded []Report
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != wire.ContentType {
			t.Errorf("content type = %q, want the wire codec", ct)
		}
		body, _ := io.ReadAll(r.Body)
		b := wire.GetBatch()
		defer wire.PutBatch(b)
		if err := wire.DecodeFrame(body, b); err != nil {
			t.Errorf("DecodeFrame: %v", err)
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		decoded = DecodeReports(b, decoded[:0])
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	u := &HTTPUplink{BaseURL: srv.URL, Codec: CodecBinary}
	reports := wireReports(5)
	if err := u.SendBatch(reports); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(reports) {
		t.Fatalf("server decoded %d reports, want %d", len(decoded), len(reports))
	}
	for i := range reports {
		if decoded[i].Device != reports[i].Device || decoded[i].Beacons[0].ID != reports[i].Beacons[0].ID {
			t.Fatalf("report %d: %+v vs %+v", i, decoded[i], reports[i])
		}
	}
}

func TestShardSplitterPresplit(t *testing.T) {
	shards := []string{"shard-0", "shard-1", "shard-2"}
	rr, err := ring.New(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	digest := rr.Digest(nil)
	c := &codecCounter{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/api/v1/ring":
			json.NewEncoder(w).Encode(map[string]any{
				"digest": digest, "replicas": rr.Replicas(), "shards": shards, "down": nil,
			})
		case "/api/v1/observations:batch":
			body, _ := io.ReadAll(r.Body)
			c.mu.Lock()
			c.lastDigest = r.Header.Get(wire.HeaderRingDigest)
			c.lastSections = nil
			c.mu.Unlock()
			b := wire.GetBatch()
			defer wire.PutBatch(b)
			err := wire.ScanSections(body, func(shard []byte, frame, payload []byte) error {
				if err := wire.DecodePayload(payload, b); err != nil {
					return err
				}
				// Every report in the section must hash to the named shard —
				// the device reproduced the gateway's routing exactly.
				for _, dev := range b.Devices {
					owner, err := rr.Owner(dev, nil)
					if err != nil {
						return err
					}
					if shards[owner] != string(shard) {
						return fmt.Errorf("device %q in section %q, ring says %q", dev, shard, shards[owner])
					}
				}
				c.mu.Lock()
				c.lastSections = append(c.lastSections, string(shard))
				c.mu.Unlock()
				return nil
			})
			if err != nil {
				t.Errorf("sections: %v", err)
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.WriteHeader(http.StatusOK)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	s := &ShardSplitter{BaseURL: srv.URL}
	if err := s.SendBatch(wireReports(24)); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastDigest != digest {
		t.Fatalf("upload carried digest %q, want %q", c.lastDigest, digest)
	}
	if len(c.lastSections) == 0 {
		t.Fatal("no sections reached the server")
	}
}

func TestShardSplitterRinglessFallsBackToPlainFrames(t *testing.T) {
	frames := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/v1/ring" {
			http.NotFound(w, r) // a single bms box publishes no ring
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != wire.ContentType {
			t.Errorf("content type = %q, want the wire codec", ct)
		}
		if d := r.Header.Get(wire.HeaderRingDigest); d != "" {
			t.Errorf("ringless upload carried digest %q", d)
		}
		body, _ := io.ReadAll(r.Body)
		if err := wire.DecodeFrame(body, &wire.Batch{}); err != nil {
			t.Errorf("body is not one plain frame: %v", err)
		}
		frames++
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	s := &ShardSplitter{BaseURL: srv.URL}
	if err := s.SendBatch(wireReports(8)); err != nil {
		t.Fatal(err)
	}
	if frames != 1 {
		t.Fatalf("server saw %d plain frames, want 1", frames)
	}
}

func TestShardSplitterSticky415Downgrade(t *testing.T) {
	c := &codecCounter{}
	srv := jsonOnlyServer(t, c, nil)
	defer srv.Close()

	s := &ShardSplitter{BaseURL: srv.URL, Retry: RetryPolicy{MaxAttempts: 5}}
	for i := 0; i < 3; i++ {
		if err := s.SendBatch(wireReports(4)); err != nil {
			t.Fatalf("SendBatch %d: %v", i, err)
		}
	}
	wirePosts, jsonPosts := c.snapshot()
	if wirePosts != 1 || jsonPosts != 3 {
		t.Fatalf("server saw %d wire / %d JSON posts, want 1 / 3 (sticky downgrade)", wirePosts, jsonPosts)
	}
}

func TestFailoverUplinkPerTargetDowngrade(t *testing.T) {
	// A mixed pair: the first target is JSON-only, the second speaks
	// wire. The downgrade must latch per target, not poison the pair.
	cOld := &codecCounter{}
	oldSrv := jsonOnlyServer(t, cOld, nil)
	defer oldSrv.Close()
	newWire := 0
	newSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == wire.ContentType {
			newWire++
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer newSrv.Close()

	u, err := NewFailoverUplink([]string{oldSrv.URL, newSrv.URL}, nil, RetryPolicy{MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	u.Codec = CodecBinary
	for i := 0; i < 2; i++ {
		if err := u.SendBatch(wireReports(4)); err != nil {
			t.Fatalf("SendBatch against the old target: %v", err)
		}
	}
	wirePosts, jsonPosts := cOld.snapshot()
	if wirePosts != 1 || jsonPosts != 2 {
		t.Fatalf("old target saw %d wire / %d JSON posts, want 1 / 2", wirePosts, jsonPosts)
	}

	// Fail over: the second target must still be offered the binary
	// codec — the old target's downgrade is not contagious.
	u2, err := NewFailoverUplink([]string{newSrv.URL, oldSrv.URL}, nil, RetryPolicy{MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	u2.Codec = CodecBinary
	if err := u2.SendBatch(wireReports(4)); err != nil {
		t.Fatal(err)
	}
	if newWire != 1 {
		t.Fatalf("wire-speaking target saw %d binary posts, want 1", newWire)
	}
}
