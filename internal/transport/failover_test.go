package transport

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// leaderSim is a gateway stand-in whose leadership is a test knob:
// while deposed it answers 409 with (optionally) a leader hint, while
// leading it 200s and counts deliveries.
type leaderSim struct {
	mu       sync.Mutex
	leading  bool
	hint     string
	accepted int
	hits     int
}

func (g *leaderSim) handler(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.hits++
	if !g.leading {
		if g.hint != "" {
			w.Header().Set(HeaderLeaderHint, g.hint)
			w.Header().Set(HeaderLeaderEpoch, "2")
		}
		http.Error(w, `{"error":"standby"}`, http.StatusConflict)
		return
	}
	g.accepted++
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(`{"room":"kitchen"}`))
}

func (g *leaderSim) stats() (accepted, hits int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.accepted, g.hits
}

// TestDoJSON409FailsImmediately pins the retry-policy satellite: a 409
// is permanent for THIS target — one attempt, zero backoff sleeps, so a
// redirect can happen with the whole retry budget intact.
func TestDoJSON409FailsImmediately(t *testing.T) {
	deposed := &leaderSim{hint: "http://example.invalid"}
	ts := httptest.NewServer(http.HandlerFunc(deposed.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	_, err := PostJSON(nil, ts.URL+"/api/v1/observations", []byte(`{}`), retryPolicy(rec, 5))
	if err == nil {
		t.Fatal("409 should fail the call")
	}
	if code, ok := StatusCode(err); !ok || code != http.StatusConflict {
		t.Fatalf("status = %v (%v)", code, err)
	}
	if _, hits := deposed.stats(); hits != 1 {
		t.Fatalf("server saw %d attempts, want 1 (409 must not burn the retry budget)", hits)
	}
	if len(rec.delays) != 0 {
		t.Fatalf("unexpected backoff before 409 failure: %v", rec.delays)
	}
	if hint, ok := LeaderHint(err); !ok || hint != "http://example.invalid" {
		t.Fatalf("leader hint = %q, %v", hint, ok)
	}
	if epoch, ok := LeaderEpoch(err); !ok || epoch != 2 {
		t.Fatalf("leader epoch = %d, %v", epoch, ok)
	}
}

// TestFailoverUplinkFollowsLeaderHint: the first target is deposed and
// names the leader; the uplink redirects immediately and sticks there.
func TestFailoverUplinkFollowsLeaderHint(t *testing.T) {
	leader := &leaderSim{leading: true}
	leaderTS := httptest.NewServer(http.HandlerFunc(leader.handler))
	defer leaderTS.Close()

	deposed := &leaderSim{hint: leaderTS.URL}
	deposedTS := httptest.NewServer(http.HandlerFunc(deposed.handler))
	defer deposedTS.Close()

	rec := &sleepRecorder{}
	u, err := NewFailoverUplink([]string{deposedTS.URL, leaderTS.URL}, nil, retryPolicy(rec, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err != nil {
		t.Fatalf("send through failover: %v", err)
	}
	if accepted, _ := leader.stats(); accepted != 1 {
		t.Fatalf("leader accepted %d, want 1", accepted)
	}
	if len(rec.delays) != 0 {
		t.Fatalf("hint redirect slept %v, want no backoff at all", rec.delays)
	}
	redirects, rotations := u.Stats()
	if redirects != 1 || rotations != 0 {
		t.Fatalf("redirects=%d rotations=%d, want 1/0", redirects, rotations)
	}
	// Sticky: the next send goes straight to the leader.
	if err := u.Send(Report{Device: "p", AtSeconds: 2}); err != nil {
		t.Fatal(err)
	}
	if _, hits := deposed.stats(); hits != 1 {
		t.Fatalf("deposed target saw %d hits, want 1 (second send must go to the leader)", hits)
	}
	if u.Target() != leaderTS.URL {
		t.Fatalf("sticky target = %q", u.Target())
	}
}

// TestFailoverUplinkLearnsUnlistedLeader: the hint points outside the
// configured target list (the leader moved to a respawned process on a
// new port); the uplink must follow and adopt it.
func TestFailoverUplinkLearnsUnlistedLeader(t *testing.T) {
	leader := &leaderSim{leading: true}
	leaderTS := httptest.NewServer(http.HandlerFunc(leader.handler))
	defer leaderTS.Close()

	deposed := &leaderSim{hint: leaderTS.URL}
	deposedTS := httptest.NewServer(http.HandlerFunc(deposed.handler))
	defer deposedTS.Close()

	u, err := NewFailoverUplink([]string{deposedTS.URL}, nil, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err != nil {
		t.Fatalf("send to unlisted leader: %v", err)
	}
	if u.Target() != leaderTS.URL {
		t.Fatalf("uplink did not adopt the hinted leader: %q", u.Target())
	}
}

// TestFailoverUplinkRotatesOnRefusedTarget: a dead first target (port
// refused) rotates to the second without a leader hint.
func TestFailoverUplinkRotatesOnRefusedTarget(t *testing.T) {
	leader := &leaderSim{leading: true}
	leaderTS := httptest.NewServer(http.HandlerFunc(leader.handler))
	defer leaderTS.Close()

	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	u, err := NewFailoverUplink([]string{deadURL, leaderTS.URL}, nil, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.SendBatch([]Report{{Device: "p", AtSeconds: 1}}); err != nil {
		t.Fatalf("batch through dead-then-live: %v", err)
	}
	if accepted, _ := leader.stats(); accepted != 1 {
		t.Fatalf("leader accepted %d, want 1", accepted)
	}
	if _, rotations := u.Stats(); rotations != 1 {
		t.Fatalf("rotations = %d, want 1", rotations)
	}
}

// TestFailoverUplinkBoundedWhenAllDeposed: a deposed pair hinting at
// each other must terminate with an error, not loop.
func TestFailoverUplinkBoundedWhenAllDeposed(t *testing.T) {
	a := &leaderSim{}
	b := &leaderSim{}
	tsA := httptest.NewServer(http.HandlerFunc(a.handler))
	defer tsA.Close()
	tsB := httptest.NewServer(http.HandlerFunc(b.handler))
	defer tsB.Close()
	a.hint = tsB.URL
	b.hint = tsA.URL

	u, err := NewFailoverUplink([]string{tsA.URL, tsB.URL}, nil, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err == nil {
		t.Fatal("all-deposed pair should fail the send")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded hop budget took %v", elapsed)
	}
	_, hitsA := a.stats()
	_, hitsB := b.stats()
	if total := hitsA + hitsB; total > 8 {
		t.Fatalf("hop budget leaked: %d total hits", total)
	}
}
