package transport

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// shedServer sheds the first `sheds` requests with 429 + Retry-After,
// then serves 200s, recording bodies like flakyServer.
type shedServer struct {
	mu         sync.Mutex
	sheds      int
	retryAfter string // Retry-After header value; "" omits it
	hits       int
	bodies     []string
}

func (s *shedServer) handler(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	s.mu.Lock()
	s.hits++
	shed := s.hits <= s.sheds
	s.bodies = append(s.bodies, b.String())
	ra := s.retryAfter
	s.mu.Unlock()
	if shed {
		if ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		http.Error(w, "overloaded", http.StatusTooManyRequests)
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(`{"accepted":1}`))
}

func (s *shedServer) stats() (hits int, bodies []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, append([]string(nil), s.bodies...)
}

// TestRetryAfterHonored pins the shed contract: a 429 is retried (unlike
// other 4xx) and the wait is the server's Retry-After hint, not the
// computed exponential backoff.
func TestRetryAfterHonored(t *testing.T) {
	srv := &shedServer{sheds: 2, retryAfter: "2"}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	u := &HTTPUplink{BaseURL: ts.URL, Retry: retryPolicy(rec, 4)}
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err != nil {
		t.Fatalf("send after 429 sheds: %v", err)
	}
	hits, _ := srv.stats()
	if hits != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits)
	}
	if len(rec.delays) != 2 {
		t.Fatalf("sleep count = %d, want 2", len(rec.delays))
	}
	for i, d := range rec.delays {
		if d != 2*time.Second {
			t.Fatalf("delay[%d] = %v, want the server's 2s Retry-After (not backoff)", i, d)
		}
	}
}

// TestRetryAfterJitterStretchesNotShrinks: under Jitter the hinted wait
// may grow (spreading the returning herd) but never drops below the
// server's hint.
func TestRetryAfterJitterStretchesNotShrinks(t *testing.T) {
	SeedBackoffJitter(42)
	p := RetryPolicy{Jitter: true}
	hint := time.Second
	for i := 0; i < 100; i++ {
		d := p.shedDelay(hint)
		if d < hint {
			t.Fatalf("jittered shed delay %v below the server hint %v", d, hint)
		}
		if d > hint+hint/2 {
			t.Fatalf("jittered shed delay %v above hint+50%% = %v", d, hint+hint/2)
		}
	}
}

// TestBackoffFullJitter pins the jitter satellite: with Jitter set,
// delays are drawn uniformly from (0, d] of the deterministic envelope,
// deterministic under SeedBackoffJitter, observable via the sleep hook.
func TestBackoffFullJitter(t *testing.T) {
	SeedBackoffJitter(7)
	p := RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      true,
	}
	envelope := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	var first []time.Duration
	for n, env := range envelope {
		d := p.backoff(n)
		if d <= 0 || d > env {
			t.Fatalf("jittered backoff(%d) = %v outside (0, %v]", n, d, env)
		}
		first = append(first, d)
	}
	// Re-seeding reproduces the exact stream.
	SeedBackoffJitter(7)
	for n := range envelope {
		if d := p.backoff(n); d != first[n] {
			t.Fatalf("re-seeded backoff(%d) = %v, want %v (stream must be deterministic)", n, d, first[n])
		}
	}
	// A different seed gives a different stream (vacuity check).
	SeedBackoffJitter(8)
	same := true
	for n := range envelope {
		if p.backoff(n) != first[n] {
			same = false
		}
	}
	if same {
		t.Fatal("seed 8 reproduced seed 7's jitter stream")
	}
}

// TestBackoffNoJitterUnchanged: the historical deterministic doubling is
// untouched when Jitter is off.
func TestBackoffNoJitterUnchanged(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	for n, w := range want {
		if d := p.backoff(n); d != w {
			t.Fatalf("backoff(%d) = %v, want %v", n, d, w)
		}
	}
}

// TestRetryBudgetCapsSpend: the Budget field fails the exchange once
// cumulative backoff would exceed it, instead of sleeping on.
func TestRetryBudgetCapsSpend(t *testing.T) {
	fs := &flakyServer{failures: 100, mode: "503"}
	ts := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	p := RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		Budget:      50 * time.Millisecond, // 10+20 fits; +40 would blow it
		Sleep:       rec.sleep,
	}
	u := &HTTPUplink{BaseURL: ts.URL, Retry: p}
	err := u.Send(Report{Device: "p", AtSeconds: 1})
	if err == nil {
		t.Fatal("budgeted retry against a dead server should fail")
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("err = %v, want a retry-budget failure wrapping the last error", err)
	}
	if code, ok := StatusCode(err); !ok || code != http.StatusServiceUnavailable {
		t.Fatalf("budget error should wrap the last 503; StatusCode = (%d, %v)", code, ok)
	}
	if hits, _ := fs.stats(); hits != 3 {
		t.Fatalf("server saw %d attempts, want 3 (10ms+20ms spent, 40ms over budget)", hits)
	}
	var total time.Duration
	for _, d := range rec.delays {
		total += d
	}
	if total > p.Budget {
		t.Fatalf("slept %v, above the %v budget", total, p.Budget)
	}
}

// TestNilClientPerAttemptDeadline pins the DoJSON fix: with a nil
// client each attempt gets its OWN deadline — an attempt that stalls
// past it is aborted and retried (not fatal to the exchange), and
// backoff sleeps between attempts consume none of a later attempt's
// window. The window is shrunk via the test hook so the test does not
// wait out real 5-second timeouts.
func TestNilClientPerAttemptDeadline(t *testing.T) {
	old := nilClientAttemptTimeout
	nilClientAttemptTimeout = 150 * time.Millisecond
	defer func() { nilClientAttemptTimeout = old }()

	var mu sync.Mutex
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		h := hits
		mu.Unlock()
		switch h {
		case 1:
			// Stall past the per-attempt deadline: the client must abort
			// THIS attempt and retry, not fail the whole exchange.
			time.Sleep(400 * time.Millisecond)
			w.WriteHeader(http.StatusOK)
		case 2:
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		default:
			// Inside a fresh 150ms window — succeeds only if earlier
			// attempts and the 200ms of backoff sleeps left it untouched.
			time.Sleep(80 * time.Millisecond)
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{}`))
		}
	}))
	defer ts.Close()

	// Real backoff sleeps: 100+100 = 200ms of waiting that must not
	// count against any attempt's 150ms deadline.
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	start := time.Now()
	if _, err := PostJSON(nil, ts.URL+"/x", []byte(`{}`), p); err != nil {
		t.Fatalf("post with nil client: %v", err)
	}
	mu.Lock()
	h := hits
	mu.Unlock()
	if h != 3 {
		t.Fatalf("server saw %d attempts, want 3 (deadline abort, 503, success)", h)
	}
	// Sanity: the exchange genuinely spanned timeout + two backoffs +
	// final attempt, all longer than one attempt window.
	if elapsed := time.Since(start); elapsed < 330*time.Millisecond {
		t.Fatalf("exchange took %v — the per-attempt timeout or backoffs did not engage", elapsed)
	}
}

// TestSequencedBatchIdenticalAfterShed is the end-to-end satellite pin:
// a sequenced batch shed with 429 retransmits byte-identically — same
// (Epoch, Seq) identities, no gaps — so the server-side high-water-mark
// dedup sees the retry as the same delivery.
func TestSequencedBatchIdenticalAfterShed(t *testing.T) {
	srv := &shedServer{sheds: 2, retryAfter: "1"}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	u := &HTTPUplink{BaseURL: ts.URL, Retry: retryPolicy(rec, 5)}
	seq := NewSequencer(3)
	batch := []Report{
		{Device: "a", AtSeconds: 1},
		{Device: "b", AtSeconds: 1},
		{Device: "a", AtSeconds: 2},
	}
	for i := range batch {
		seq.Stamp(&batch[i])
	}
	if err := u.SendBatch(batch); err != nil {
		t.Fatalf("batch after sheds: %v", err)
	}
	_, bodies := srv.stats()
	if len(bodies) != 3 {
		t.Fatalf("server saw %d payloads, want 3", len(bodies))
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("attempt %d payload differs after shed:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	// The final accepted payload carries gap-free per-device sequences.
	for _, wantSeq := range []string{`"epoch":3,"seq":1`, `"epoch":3,"seq":2`} {
		if !strings.Contains(bodies[len(bodies)-1], wantSeq) {
			t.Fatalf("accepted payload missing %s: %s", wantSeq, bodies[0])
		}
	}
}

// TestRetryAfterAccessor covers the exported hint extraction.
func TestRetryAfterAccessor(t *testing.T) {
	if _, ok := RetryAfter(errors.New("plain")); ok {
		t.Fatal("plain error should carry no Retry-After")
	}
	se := &statusError{code: 429, status: "429 Too Many Requests", retryAfter: 3 * time.Second, hasRetryAfter: true}
	if d, ok := RetryAfter(se); !ok || d != 3*time.Second {
		t.Fatalf("RetryAfter = (%v, %v), want (3s, true)", d, ok)
	}
	// Fractional header values parse leniently.
	srv := &shedServer{sheds: 1, retryAfter: "0.5"}
	ts := httptest.NewServer(http.HandlerFunc(srv.handler))
	defer ts.Close()
	_, err := PostJSON(nil, ts.URL+"/x", []byte(`{}`), RetryPolicy{})
	if err == nil {
		t.Fatal("one-shot policy should surface the 429")
	}
	if d, ok := RetryAfter(err); !ok || d != 500*time.Millisecond {
		t.Fatalf("fractional Retry-After = (%v, %v), want (500ms, true)", d, ok)
	}
	if code, ok := StatusCode(err); !ok || code != http.StatusTooManyRequests {
		t.Fatalf("StatusCode = (%d, %v), want 429", code, ok)
	}
}
