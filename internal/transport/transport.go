// Package transport implements the two uplink channels of Section VII
// that carry ranging reports from the phone to the Building Management
// Server:
//
//   - Wi-Fi: a direct HTTP POST to the BMS REST API ("more reliable and
//     stable but forces to keep on the wireless adapter").
//   - Bluetooth relay: a BLE connection to the beacon board, which
//     forwards the report to the BMS over its wired side ("more energy
//     [efficient], but it's less stable ... due to bugs in the BLE
//     Android API").
//
// A bounded retry queue papers over transient failures on either path.
package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"occusim/internal/obs"
	"occusim/internal/rng"
)

// transportMetrics is the package's telemetry: retry counts, the
// backoff waits those retries sleep through (previously invisible and
// untimed), budget exhaustions, and the failover uplink's leader-hint
// redirects and target rotations. The transport layer is free
// functions over a value RetryPolicy, so the handles live at package
// level, installed once by Instrument; until then the pointer is nil
// and every hot-path use is one atomic load + branch.
type transportMetrics struct {
	retries         *obs.Counter
	backoffWait     *obs.Histogram
	budgetExhausted *obs.Counter
	redirects       *obs.Counter
	rotations       *obs.Counter
	// Per-codec batch upload counts (see wire.go): the forward-vs-
	// resplit ratio on the gateway side starts with what devices sent.
	wireJSON       *obs.Counter
	wireBinary     *obs.Counter
	wirePresplit   *obs.Counter
	wireDowngrades *obs.Counter
}

var pkgMet atomic.Pointer[transportMetrics]

// Instrument registers the transport layer's series on m. Call once at
// process wiring (bmsd, loadgen); later calls re-point the handles at
// the new registry.
func Instrument(m *obs.Metrics) {
	if m == nil {
		return
	}
	pkgMet.Store(&transportMetrics{
		retries:         m.Counter("transport_retries_total", "retransmission attempts after failed exchanges"),
		backoffWait:     m.Timing("transport_backoff_seconds", "backoff waits slept before retransmissions"),
		budgetExhausted: m.Counter("transport_retry_budget_exhausted_total", "sends abandoned with their retry budget spent"),
		redirects:       m.Counter("transport_leader_redirects_total", "409 stale-leader answers followed to the hinted leader"),
		rotations:       m.Counter("transport_target_rotations_total", "failover rotations to the next configured gateway"),
		wireJSON:        m.Counter("transport_wire_batches_total", "report batches uploaded, by codec", obs.L("codec", "json")),
		wireBinary:      m.Counter("transport_wire_batches_total", "report batches uploaded, by codec", obs.L("codec", "binary")),
		wirePresplit:    m.Counter("transport_wire_batches_total", "report batches uploaded, by codec", obs.L("codec", "presplit")),
		wireDowngrades:  m.Counter("transport_wire_downgrades_total", "sticky JSON downgrades after a 415 unsupported-media answer"),
	})
}

// BeaconReport is one ranged beacon inside a report.
type BeaconReport struct {
	// ID is the beacon identity in "UUID/major/minor" form.
	ID string `json:"id"`
	// Distance is the filtered distance estimate in metres.
	Distance float64 `json:"distance"`
	// RSSI is the last aggregated RSSI in dBm.
	RSSI float64 `json:"rssi"`
}

// Report is the payload a device uploads after each scan cycle.
type Report struct {
	// Device names the reporting handset.
	Device string `json:"device"`
	// AtSeconds is the observation timestamp in seconds on the
	// building-wide report clock (simulated time in the experiments,
	// synchronised wall time in a deployment). Timestamps must be
	// comparable ACROSS devices, not just within one: the server merges
	// all devices onto one timeline — event ordering, dwell accounting
	// and the fleet's residue TTL sweep all compare one device's times
	// against another's.
	AtSeconds float64 `json:"atSeconds"`
	// Epoch and Seq make delivery exactly-once. Seq is a per-device
	// monotonic sequence number (first report is 1); the server keeps a
	// per-device high-water mark and ingests a sequenced report only
	// when its (Epoch, Seq) is above it, so a retransmitted batch —
	// whole-batch retry after a partial shard failure, a response lost
	// after the server committed — is acknowledged without being
	// re-ingested. Epoch orders sequence restarts: a device that loses
	// its counter (reboot, reinstall) bumps Epoch and restarts Seq at 1,
	// which the server accepts unconditionally over any Seq of a lower
	// epoch. Seq 0 marks an unsequenced report (legacy clients): it is
	// always ingested, keeping the historical at-least-once behaviour.
	Epoch uint64 `json:"epoch,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
	// Beacons lists the currently ranged beacons.
	Beacons []BeaconReport `json:"beacons"`
}

// Sequencer stamps reports with monotonic per-device sequence numbers
// under one device epoch — the client half of the exactly-once ingest
// contract. One Sequencer serves any number of devices (counters are
// per device name); it is safe for concurrent use.
type Sequencer struct {
	epoch uint64

	mu   sync.Mutex
	next map[string]uint64
}

// NewSequencer builds a sequencer for the given device epoch. Restart a
// device's stream under a higher epoch after its counter is lost; the
// server then accepts the restarted sequence over the old one.
func NewSequencer(epoch uint64) *Sequencer {
	return &Sequencer{epoch: epoch, next: map[string]uint64{}}
}

// Stamp assigns the report the next sequence number of its device (and
// the sequencer's epoch). Reports already carrying a sequence are left
// untouched, so re-stamping a retransmitted report cannot change its
// identity.
func (q *Sequencer) Stamp(r *Report) {
	if r.Seq != 0 || r.Device == "" {
		return
	}
	q.mu.Lock()
	q.next[r.Device]++
	r.Seq = q.next[r.Device]
	q.mu.Unlock()
	r.Epoch = q.epoch
}

// Uplink carries reports to the server.
type Uplink interface {
	// Send delivers one report, returning an error on failure.
	Send(Report) error
	// Name identifies the uplink in reports.
	Name() string
}

// BatchSender is implemented by uplinks that can deliver many reports in
// one exchange (the BMS batch-ingest endpoint). BatchingUplink uses it
// when available and falls back to per-report Send otherwise.
type BatchSender interface {
	// SendBatch delivers the reports in order. An error means none of
	// them were acknowledged — though under retrying transports the
	// server may still have processed an unacknowledged attempt
	// (at-least-once delivery; see RetryPolicy).
	SendBatch([]Report) error
}

// RetryPolicy bounds how an HTTP exchange retransmits after transient
// failures: connection-level errors (reset, refused, timeout), 5xx
// responses and 429 sheds are retried with capped exponential backoff;
// any other non-2xx status is a permanent rejection and fails
// immediately. A 429 carrying a Retry-After header is retried after the
// server's hint instead of the computed backoff — an overloaded server
// knows its own recovery horizon better than the client does. Each
// retry resends the identical request body, so a multi-report batch
// keeps its order across attempts.
//
// Delivery on the wire is at-least-once: a response lost after the
// server processed the request means the retry re-delivers the same
// payload. With sequenced reports (Report.Seq, stamped by a Sequencer
// or a BatchingUplink) the server dedupes re-deliveries against its
// per-device high-water mark, making ingest exactly-once end to end;
// unsequenced reports (Seq 0) keep the historical at-least-once
// semantics.
//
// The zero value means "one attempt, no retries", preserving the
// fire-once behaviour callers had before retries existed.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries for one exchange,
	// including the first; 0 and 1 both mean no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// retry doubles it, capped at MaxDelay. Defaults: 100 ms and 2 s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter draws each backoff uniformly from (0, d] instead of the
	// deterministic doubled delay d. Without it a fleet of devices that
	// failed together retries together — every backoff step re-delivers
	// the same synchronized storm that caused the failure. Full jitter
	// decorrelates the herd. Draws come from a seeded package-level
	// source (SeedBackoffJitter pins it in tests, observable through the
	// Sleep hook); a Retry-After hint is stretched by up to +50% instead
	// of shrunk, so the jittered fleet never returns before the server
	// asked it to.
	Jitter bool
	// Budget caps the total backoff this policy will sleep across one
	// exchange (one DoJSON call). When the next computed delay would
	// push the cumulative spend past the budget, the exchange fails with
	// the last error instead of sleeping — bounding how long a device's
	// uplink window can stall on a dead or shedding server. 0 means
	// unbudgeted.
	Budget time.Duration
	// Sleep is the wait hook; nil means time.Sleep. Tests inject a
	// recorder so backoff is observable without real waiting.
	Sleep func(time.Duration)
}

// DefaultRetry is the policy the command-line clients use: four
// attempts, full-jitter backoff drawn from (0, 100ms], (0, 200ms] and
// (0, 400ms] (≤ 700 ms expected-case ≈ 350 ms), and a 5 s total retry
// budget so one uplink window can never stall past its flush period.
// Before jitter existed this policy slept exactly 100+200+400 ms, which
// synchronized whole-fleet retry storms; the envelope is unchanged,
// only the draw inside it is randomized.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      true,
		Budget:      5 * time.Second,
	}
}

// backoffJitter is the shared source behind RetryPolicy.Jitter.
// RetryPolicy is a value copied across goroutines, so the source cannot
// live on the policy; one locked package-level source keeps draws
// race-free and lets tests pin the stream.
var backoffJitter = struct {
	mu  sync.Mutex
	src *rng.Source
}{src: rng.New(uint64(time.Now().UnixNano()))}

// SeedBackoffJitter re-seeds the shared jitter source, making jittered
// backoff deterministic for tests.
func SeedBackoffJitter(seed uint64) {
	backoffJitter.mu.Lock()
	backoffJitter.src = rng.New(seed)
	backoffJitter.mu.Unlock()
}

func jitterFloat() float64 {
	backoffJitter.mu.Lock()
	f := backoffJitter.src.Float64()
	backoffJitter.mu.Unlock()
	return f
}

// attempts returns the effective attempt budget.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before retry number n (0-based).
func (p RetryPolicy) backoff(n int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter {
		j := time.Duration(jitterFloat() * float64(d))
		if j < time.Millisecond {
			j = time.Millisecond // never a zero sleep: that is a hot retry loop
		}
		d = j
	}
	return d
}

// shedDelay turns a server Retry-After hint into the actual wait: the
// hint verbatim, or hint + uniform(0, hint/2) under Jitter so a fleet
// shed at the same instant does not return at the same instant.
func (p RetryPolicy) shedDelay(hint time.Duration) time.Duration {
	if !p.Jitter || hint <= 0 {
		return hint
	}
	return hint + time.Duration(jitterFloat()*float64(hint)/2)
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Leadership-fencing headers, shared by every layer that speaks them:
// the fleet's shard client stamps writes with HeaderGatewayEpoch, the
// BMS lease arbiter answers stale writes with 409 plus
// HeaderLeaderEpoch/HeaderLeaderHint, and FailoverUplink follows the
// hint. Defined here so producer and consumer cannot drift apart.
const (
	// HeaderGatewayEpoch stamps a write with the sending gateway's
	// leadership epoch; absent or zero means unfenced.
	HeaderGatewayEpoch = "X-Gateway-Epoch"
	// HeaderLeaderEpoch is the highest epoch the answering shard has
	// granted, on a 409 stale-leader rejection.
	HeaderLeaderEpoch = "X-Leader-Epoch"
	// HeaderLeaderHint is the advertised URL of the current
	// leaseholder, on a 409 when the shard knows it.
	HeaderLeaderHint = "X-Leader-Hint"
)

// statusError is a non-2xx response; its code decides retryability and
// its body snippet tells the operator why the server refused.
type statusError struct {
	code   int
	status string
	body   string
	// retryAfter carries the server's Retry-After hint (429 sheds);
	// hasRetryAfter distinguishes "no header" from "Retry-After: 0".
	retryAfter    time.Duration
	hasRetryAfter bool
	// leaderHint and leaderEpoch carry a 409 stale-leader rejection's
	// redirect: the current leaseholder's URL (may be empty) and the
	// granted epoch that outbid the sender.
	leaderHint     string
	leaderEpoch    uint64
	hasLeaderEpoch bool
}

func (e *statusError) Error() string {
	if e.body != "" {
		return "transport: server returned " + e.status + ": " + e.body
	}
	return "transport: server returned " + e.status
}

// DoJSON performs one JSON exchange under the retry policy and returns
// the response payload. A nil client gets a 5-second deadline PER
// ATTEMPT (a per-attempt request context, not http.Client.Timeout —
// the client timeout would span every attempt and the backoff sleeps
// between them, leaving the last attempt born dead). The fleet layer's
// HTTP shard client shares this path with HTTPUplink, so both see
// identical retry and error semantics.
func DoJSON(client *http.Client, method, url string, body []byte, policy RetryPolicy) ([]byte, error) {
	return DoJSONHeaders(client, method, url, body, nil, policy)
}

// DoJSONHeaders is DoJSON with extra request headers on every attempt —
// the fleet's shard client uses it to stamp writes with the gateway
// leadership epoch.
//
// A 409 stale-leader rejection is permanent for THIS target but
// immediately redirectable: like every non-429 4xx it fails on the
// first answer without sleeping or spending retry budget, and the
// error carries the shard's leader hint (LeaderHint/LeaderEpoch) so a
// FailoverUplink can switch to the real leader at once instead of
// burning backoff against a deposed gateway.
func DoJSONHeaders(client *http.Client, method, url string, body []byte, hdr map[string]string, policy RetryPolicy) ([]byte, error) {
	var attemptTimeout time.Duration
	if client == nil {
		// The shared pooled client, not a throwaway: a fresh Client per
		// call still shares DefaultTransport, whose 2-idle-conns-per-host
		// cap makes a concurrent device fleet redial constantly. The 5 s
		// deadline rides the per-attempt request context as before.
		client = pooledClient
		attemptTimeout = nilClientAttemptTimeout
	}
	// A request that cannot even be constructed (malformed URL) fails
	// identically on every attempt; surface it without burning backoff.
	if _, err := http.NewRequest(method, url, nil); err != nil {
		return nil, fmt.Errorf("transport: request: %w", err)
	}
	var lastErr error
	var spent time.Duration
	for attempt := 0; attempt < policy.attempts(); attempt++ {
		if attempt > 0 {
			d := policy.backoff(attempt - 1)
			if hint, ok := RetryAfter(lastErr); ok {
				d = policy.shedDelay(hint)
			}
			if policy.Budget > 0 && spent+d > policy.Budget {
				if tm := pkgMet.Load(); tm != nil {
					tm.budgetExhausted.Inc()
				}
				// The cumulative wait is part of the diagnosis: a budget
				// blown in 2 attempts of long sheds reads differently from
				// one nibbled away by many short 5xx retries.
				return nil, fmt.Errorf("transport: retry budget %v exhausted after %d attempts (waited %v): %w",
					policy.Budget, attempt, spent, lastErr)
			}
			spent += d
			if tm := pkgMet.Load(); tm != nil {
				tm.retries.Inc()
				tm.backoffWait.ObserveDuration(d)
			}
			policy.sleep(d)
		}
		payload, err := doOnce(client, method, url, body, hdr, attemptTimeout)
		if err == nil {
			return payload, nil
		}
		lastErr = err
		var se *statusError
		if errors.As(err, &se) && se.code/100 != 5 && se.code != http.StatusTooManyRequests {
			return nil, err // permanent rejection: do not retry 4xx (429 sheds excepted)
		}
	}
	return nil, lastErr
}

// nilClientAttemptTimeout is the deadline DoJSON applies to EACH
// attempt when handed a nil client. A var so tests can shrink the
// window without waiting out real 5-second timeouts.
var nilClientAttemptTimeout = 5 * time.Second

// doOnce is a single exchange attempt; timeout > 0 bounds just this
// attempt via the request context.
func doOnce(client *http.Client, method, url string, body []byte, hdr map[string]string, timeout time.Duration) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, fmt.Errorf("transport: request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("transport: %s: %w", strings.ToLower(method), err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		snippet := strings.TrimSpace(string(payload))
		if len(snippet) > 200 {
			snippet = snippet[:200] + "…"
		}
		se := &statusError{code: resp.StatusCode, status: resp.Status, body: snippet}
		if ra := strings.TrimSpace(resp.Header.Get("Retry-After")); ra != "" {
			// Integer seconds per RFC 9110; fractional accepted leniently.
			if secs, perr := strconv.ParseFloat(ra, 64); perr == nil && secs >= 0 {
				se.retryAfter = time.Duration(secs * float64(time.Second))
				se.hasRetryAfter = true
			}
		}
		se.leaderHint = strings.TrimSpace(resp.Header.Get(HeaderLeaderHint))
		if le := strings.TrimSpace(resp.Header.Get(HeaderLeaderEpoch)); le != "" {
			if epoch, perr := strconv.ParseUint(le, 10, 64); perr == nil {
				se.leaderEpoch = epoch
				se.hasLeaderEpoch = true
			}
		}
		return nil, se
	}
	if err != nil {
		return nil, fmt.Errorf("transport: read response: %w", err)
	}
	return payload, nil
}

// StatusCode extracts the HTTP status of a server rejection from err
// (an error returned by DoJSON/PostJSON/GetJSON or anything wrapping
// one). ok is false for connection-level failures, which carry no
// status. Gateways use it to tell a client's 4xx — not worth retrying
// or re-reporting as a server fault — from genuine upstream trouble.
func StatusCode(err error) (int, bool) {
	var se *statusError
	if errors.As(err, &se) {
		return se.code, true
	}
	return 0, false
}

// RetryAfter extracts the server's Retry-After hint from a rejection
// error (typically a 429 shed). ok is false when the response carried
// no parseable hint.
func RetryAfter(err error) (time.Duration, bool) {
	var se *statusError
	if errors.As(err, &se) && se.hasRetryAfter {
		return se.retryAfter, true
	}
	return 0, false
}

// LeaderHint extracts the leaseholder URL from a 409 stale-leader
// rejection. ok is false when the response named no leader.
func LeaderHint(err error) (string, bool) {
	var se *statusError
	if errors.As(err, &se) && se.leaderHint != "" {
		return se.leaderHint, true
	}
	return "", false
}

// LeaderEpoch extracts the granted leadership epoch from a 409
// stale-leader rejection — the epoch a losing claimant must outbid.
func LeaderEpoch(err error) (uint64, bool) {
	var se *statusError
	if errors.As(err, &se) && se.hasLeaderEpoch {
		return se.leaderEpoch, true
	}
	return 0, false
}

// PostJSON posts body and returns the response payload under the policy.
func PostJSON(client *http.Client, url string, body []byte, policy RetryPolicy) ([]byte, error) {
	return DoJSON(client, http.MethodPost, url, body, policy)
}

// GetJSON fetches url and returns the response payload under the policy.
func GetJSON(client *http.Client, url string, policy RetryPolicy) ([]byte, error) {
	return DoJSON(client, http.MethodGet, url, nil, policy)
}

// HTTPUplink posts reports to the BMS observations endpoint — the Wi-Fi
// path. With a Retry policy set, transient failures (connection resets,
// 5xx) are retransmitted with capped exponential backoff; the zero
// policy keeps the historical one-shot behaviour.
type HTTPUplink struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client defaults to a 5-second-timeout client when nil.
	Client *http.Client
	// Retry bounds retransmission of failed exchanges.
	Retry RetryPolicy
	// Codec picks the batch encoding: CodecJSON (the default) or
	// CodecBinary (internal/wire frames, negotiated down to JSON on the
	// first 415 — see jsonOnly).
	Codec Codec

	// jsonOnly latches after a 415: the target does not speak the
	// binary codec, and asking again on every batch would waste a
	// round trip per flush. Sticky for the uplink's lifetime.
	jsonOnly atomic.Bool
}

// Name implements Uplink.
func (u *HTTPUplink) Name() string { return "wifi-http" }

// Send implements Uplink. In binary mode a single report rides a
// one-report frame through the batch endpoint — the server treats a
// batch of one identically to a single observation POST.
func (u *HTTPUplink) Send(r Report) error {
	if u.Codec == CodecBinary && !u.jsonOnly.Load() {
		return u.sendBatchBinary([]Report{r})
	}
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("transport: marshal report: %w", err)
	}
	_, err = PostJSON(u.Client, u.BaseURL+"/api/v1/observations", body, u.Retry)
	return err
}

// SendBatch implements BatchSender against the BMS batch-ingest
// endpoint: one POST carries the whole slice, and a retried POST
// carries the identical slice, so batch order survives retransmission.
func (u *HTTPUplink) SendBatch(reports []Report) error {
	if u.Codec == CodecBinary && !u.jsonOnly.Load() {
		return u.sendBatchBinary(reports)
	}
	return u.sendBatchJSON(reports)
}

// SendFunc adapts a function to the Uplink interface, used to wire the
// simulated in-process BMS without HTTP.
type SendFunc struct {
	// F handles one report.
	F func(Report) error
	// Label is the uplink name.
	Label string
}

// Send implements Uplink.
func (s SendFunc) Send(r Report) error { return s.F(r) }

// Name implements Uplink.
func (s SendFunc) Name() string { return s.Label }

// BTRelay models the Bluetooth path: the phone hands the report to the
// beacon board over a fresh BLE connection, and the board forwards it.
// The BLE hop is flaky (Android 4.x connection bugs), modelled as a drop
// probability.
type BTRelay struct {
	next     Uplink
	dropProb float64
	src      *rng.Source

	attempts int
	drops    int
}

// NewBTRelay wraps the board's onward uplink. dropProb ∈ [0, 1] is the
// BLE connection failure probability.
func NewBTRelay(next Uplink, dropProb float64, src *rng.Source) (*BTRelay, error) {
	if next == nil {
		return nil, fmt.Errorf("transport: BT relay needs an onward uplink")
	}
	if dropProb < 0 || dropProb > 1 {
		return nil, fmt.Errorf("transport: drop probability %v outside [0,1]", dropProb)
	}
	if src == nil {
		return nil, fmt.Errorf("transport: BT relay needs an rng source")
	}
	return &BTRelay{next: next, dropProb: dropProb, src: src}, nil
}

// Name implements Uplink.
func (b *BTRelay) Name() string { return "bluetooth-relay" }

// Send implements Uplink.
func (b *BTRelay) Send(r Report) error {
	b.attempts++
	if b.src.Bool(b.dropProb) {
		b.drops++
		return fmt.Errorf("transport: BLE connection to beacon board failed")
	}
	return b.next.Send(r)
}

// Stats returns (attempts, drops) over the relay's lifetime.
func (b *BTRelay) Stats() (attempts, drops int) { return b.attempts, b.drops }

// Queue is a bounded store-and-forward retry queue in front of an
// uplink: failed reports are retried on subsequent flushes until their
// attempt budget is exhausted.
type Queue struct {
	uplink      Uplink
	maxLen      int
	maxAttempts int

	pending []queued
	sent    int
	dropped int
}

type queued struct {
	report   Report
	attempts int
}

// NewQueue builds a queue of at most maxLen reports, each retried at
// most maxAttempts times.
func NewQueue(uplink Uplink, maxLen, maxAttempts int) (*Queue, error) {
	if uplink == nil {
		return nil, fmt.Errorf("transport: queue needs an uplink")
	}
	if maxLen < 1 || maxAttempts < 1 {
		return nil, fmt.Errorf("transport: queue bounds must be positive (len=%d, attempts=%d)", maxLen, maxAttempts)
	}
	return &Queue{uplink: uplink, maxLen: maxLen, maxAttempts: maxAttempts}, nil
}

// Enqueue adds a report, evicting the oldest when full. It returns true
// when an eviction happened.
func (q *Queue) Enqueue(r Report) bool {
	evicted := false
	if len(q.pending) >= q.maxLen {
		q.pending = q.pending[1:]
		q.dropped++
		evicted = true
	}
	q.pending = append(q.pending, queued{report: r})
	return evicted
}

// Flush attempts to send every pending report in order. Reports that
// fail stay queued unless their attempt budget is exhausted. It returns
// the number delivered during this flush.
func (q *Queue) Flush() int {
	delivered := 0
	var remaining []queued
	for _, item := range q.pending {
		item.attempts++
		if err := q.uplink.Send(item.report); err != nil {
			if item.attempts >= q.maxAttempts {
				q.dropped++
			} else {
				remaining = append(remaining, item)
			}
			continue
		}
		delivered++
		q.sent++
	}
	q.pending = remaining
	return delivered
}

// Pending returns the queued report count.
func (q *Queue) Pending() int { return len(q.pending) }

// Stats returns lifetime (sent, dropped) counts.
func (q *Queue) Stats() (sent, dropped int) { return q.sent, q.dropped }
