// Package transport implements the two uplink channels of Section VII
// that carry ranging reports from the phone to the Building Management
// Server:
//
//   - Wi-Fi: a direct HTTP POST to the BMS REST API ("more reliable and
//     stable but forces to keep on the wireless adapter").
//   - Bluetooth relay: a BLE connection to the beacon board, which
//     forwards the report to the BMS over its wired side ("more energy
//     [efficient], but it's less stable ... due to bugs in the BLE
//     Android API").
//
// A bounded retry queue papers over transient failures on either path.
package transport

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"occusim/internal/rng"
)

// BeaconReport is one ranged beacon inside a report.
type BeaconReport struct {
	// ID is the beacon identity in "UUID/major/minor" form.
	ID string `json:"id"`
	// Distance is the filtered distance estimate in metres.
	Distance float64 `json:"distance"`
	// RSSI is the last aggregated RSSI in dBm.
	RSSI float64 `json:"rssi"`
}

// Report is the payload a device uploads after each scan cycle.
type Report struct {
	// Device names the reporting handset.
	Device string `json:"device"`
	// AtSeconds is the device's observation timestamp in seconds since
	// its epoch (simulated time in the experiments).
	AtSeconds float64 `json:"atSeconds"`
	// Beacons lists the currently ranged beacons.
	Beacons []BeaconReport `json:"beacons"`
}

// Uplink carries reports to the server.
type Uplink interface {
	// Send delivers one report, returning an error on failure.
	Send(Report) error
	// Name identifies the uplink in reports.
	Name() string
}

// BatchSender is implemented by uplinks that can deliver many reports in
// one exchange (the BMS batch-ingest endpoint). BatchingUplink uses it
// when available and falls back to per-report Send otherwise.
type BatchSender interface {
	// SendBatch delivers the reports in order. An error means none of
	// them were acknowledged.
	SendBatch([]Report) error
}

// HTTPUplink posts reports to the BMS observations endpoint — the Wi-Fi
// path.
type HTTPUplink struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client defaults to a 5-second-timeout client when nil.
	Client *http.Client
}

// Name implements Uplink.
func (u *HTTPUplink) Name() string { return "wifi-http" }

// Send implements Uplink.
func (u *HTTPUplink) Send(r Report) error {
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("transport: marshal report: %w", err)
	}
	return u.post("/api/v1/observations", body)
}

// SendBatch implements BatchSender against the BMS batch-ingest
// endpoint: one POST carries the whole slice.
func (u *HTTPUplink) SendBatch(reports []Report) error {
	body, err := json.Marshal(reports)
	if err != nil {
		return fmt.Errorf("transport: marshal batch: %w", err)
	}
	return u.post("/api/v1/observations:batch", body)
}

func (u *HTTPUplink) post(path string, body []byte) error {
	client := u.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	resp, err := client.Post(u.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("transport: post: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("transport: server returned %s", resp.Status)
	}
	return nil
}

// SendFunc adapts a function to the Uplink interface, used to wire the
// simulated in-process BMS without HTTP.
type SendFunc struct {
	// F handles one report.
	F func(Report) error
	// Label is the uplink name.
	Label string
}

// Send implements Uplink.
func (s SendFunc) Send(r Report) error { return s.F(r) }

// Name implements Uplink.
func (s SendFunc) Name() string { return s.Label }

// BTRelay models the Bluetooth path: the phone hands the report to the
// beacon board over a fresh BLE connection, and the board forwards it.
// The BLE hop is flaky (Android 4.x connection bugs), modelled as a drop
// probability.
type BTRelay struct {
	next     Uplink
	dropProb float64
	src      *rng.Source

	attempts int
	drops    int
}

// NewBTRelay wraps the board's onward uplink. dropProb ∈ [0, 1] is the
// BLE connection failure probability.
func NewBTRelay(next Uplink, dropProb float64, src *rng.Source) (*BTRelay, error) {
	if next == nil {
		return nil, fmt.Errorf("transport: BT relay needs an onward uplink")
	}
	if dropProb < 0 || dropProb > 1 {
		return nil, fmt.Errorf("transport: drop probability %v outside [0,1]", dropProb)
	}
	if src == nil {
		return nil, fmt.Errorf("transport: BT relay needs an rng source")
	}
	return &BTRelay{next: next, dropProb: dropProb, src: src}, nil
}

// Name implements Uplink.
func (b *BTRelay) Name() string { return "bluetooth-relay" }

// Send implements Uplink.
func (b *BTRelay) Send(r Report) error {
	b.attempts++
	if b.src.Bool(b.dropProb) {
		b.drops++
		return fmt.Errorf("transport: BLE connection to beacon board failed")
	}
	return b.next.Send(r)
}

// Stats returns (attempts, drops) over the relay's lifetime.
func (b *BTRelay) Stats() (attempts, drops int) { return b.attempts, b.drops }

// Queue is a bounded store-and-forward retry queue in front of an
// uplink: failed reports are retried on subsequent flushes until their
// attempt budget is exhausted.
type Queue struct {
	uplink      Uplink
	maxLen      int
	maxAttempts int

	pending []queued
	sent    int
	dropped int
}

type queued struct {
	report   Report
	attempts int
}

// NewQueue builds a queue of at most maxLen reports, each retried at
// most maxAttempts times.
func NewQueue(uplink Uplink, maxLen, maxAttempts int) (*Queue, error) {
	if uplink == nil {
		return nil, fmt.Errorf("transport: queue needs an uplink")
	}
	if maxLen < 1 || maxAttempts < 1 {
		return nil, fmt.Errorf("transport: queue bounds must be positive (len=%d, attempts=%d)", maxLen, maxAttempts)
	}
	return &Queue{uplink: uplink, maxLen: maxLen, maxAttempts: maxAttempts}, nil
}

// Enqueue adds a report, evicting the oldest when full. It returns true
// when an eviction happened.
func (q *Queue) Enqueue(r Report) bool {
	evicted := false
	if len(q.pending) >= q.maxLen {
		q.pending = q.pending[1:]
		q.dropped++
		evicted = true
	}
	q.pending = append(q.pending, queued{report: r})
	return evicted
}

// Flush attempts to send every pending report in order. Reports that
// fail stay queued unless their attempt budget is exhausted. It returns
// the number delivered during this flush.
func (q *Queue) Flush() int {
	delivered := 0
	var remaining []queued
	for _, item := range q.pending {
		item.attempts++
		if err := q.uplink.Send(item.report); err != nil {
			if item.attempts >= q.maxAttempts {
				q.dropped++
			} else {
				remaining = append(remaining, item)
			}
			continue
		}
		delivered++
		q.sent++
	}
	q.pending = remaining
	return delivered
}

// Pending returns the queued report count.
func (q *Queue) Pending() int { return len(q.pending) }

// Stats returns lifetime (sent, dropped) counts.
func (q *Queue) Stats() (sent, dropped int) { return q.sent, q.dropped }
