package transport

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"occusim/internal/obs"
	"strings"
	"sync"
	"testing"
	"time"
)

// flakyServer fails the first failures requests in the configured way,
// then serves 200s, recording every request body it saw.
type flakyServer struct {
	mu       sync.Mutex
	failures int
	mode     string // "503", "400", or "reset"
	hits     int
	bodies   []string
}

func (f *flakyServer) handler(w http.ResponseWriter, r *http.Request) {
	var body strings.Builder
	sc := bufio.NewScanner(r.Body)
	for sc.Scan() {
		body.WriteString(sc.Text())
	}
	f.mu.Lock()
	f.hits++
	fail := f.hits <= f.failures
	f.bodies = append(f.bodies, body.String())
	mode := f.mode
	f.mu.Unlock()
	if !fail {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(`{"rooms":[]}`))
		return
	}
	switch mode {
	case "400":
		http.Error(w, "bad", http.StatusBadRequest)
	case "reset":
		// Kill the connection mid-exchange so the client sees a
		// transport-level error rather than a status.
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server not hijackable")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close()
	default:
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}
}

func (f *flakyServer) stats() (hits int, bodies []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits, append([]string(nil), f.bodies...)
}

// sleepRecorder captures backoff delays instead of waiting them out.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *sleepRecorder) sleep(d time.Duration) {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
}

func retryPolicy(s *sleepRecorder, attempts int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Sleep:       s.sleep,
	}
}

func TestHTTPUplinkRetries5xx(t *testing.T) {
	fs := &flakyServer{failures: 2, mode: "503"}
	ts := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	u := &HTTPUplink{BaseURL: ts.URL, Retry: retryPolicy(rec, 4)}
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err != nil {
		t.Fatalf("send after transient 503s: %v", err)
	}
	hits, _ := fs.stats()
	if hits != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits)
	}
	// Capped exponential: 10 ms then 20 ms.
	if len(rec.delays) != 2 || rec.delays[0] != 10*time.Millisecond || rec.delays[1] != 20*time.Millisecond {
		t.Fatalf("backoff delays = %v", rec.delays)
	}
}

func TestHTTPUplinkRetriesConnectionReset(t *testing.T) {
	fs := &flakyServer{failures: 1, mode: "reset"}
	ts := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	u := &HTTPUplink{BaseURL: ts.URL, Retry: retryPolicy(rec, 3)}
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err != nil {
		t.Fatalf("send after connection reset: %v", err)
	}
	if hits, _ := fs.stats(); hits != 2 {
		t.Fatalf("server saw %d attempts, want 2", hits)
	}
}

func TestHTTPUplinkDoesNotRetry4xx(t *testing.T) {
	fs := &flakyServer{failures: 100, mode: "400"}
	ts := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	u := &HTTPUplink{BaseURL: ts.URL, Retry: retryPolicy(rec, 4)}
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err == nil {
		t.Fatal("400 should fail the send")
	}
	if hits, _ := fs.stats(); hits != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no 4xx retries)", hits)
	}
	if len(rec.delays) != 0 {
		t.Fatalf("unexpected backoff before permanent failure: %v", rec.delays)
	}
}

func TestHTTPUplinkExhaustsAttemptBudget(t *testing.T) {
	fs := &flakyServer{failures: 100, mode: "503"}
	ts := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	u := &HTTPUplink{BaseURL: ts.URL, Retry: retryPolicy(rec, 3)}
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err == nil {
		t.Fatal("persistent 503 should eventually fail")
	}
	if hits, _ := fs.stats(); hits != 3 {
		t.Fatalf("server saw %d attempts, want the full budget of 3", hits)
	}
	// Delay caps at MaxDelay: 10, 20 (40 would be next but budget ends).
	if len(rec.delays) != 2 {
		t.Fatalf("backoff count = %d, want 2", len(rec.delays))
	}
}

func TestHTTPUplinkZeroPolicyIsOneShot(t *testing.T) {
	fs := &flakyServer{failures: 100, mode: "503"}
	ts := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer ts.Close()

	u := &HTTPUplink{BaseURL: ts.URL}
	if err := u.Send(Report{Device: "p", AtSeconds: 1}); err == nil {
		t.Fatal("503 should fail")
	}
	if hits, _ := fs.stats(); hits != 1 {
		t.Fatalf("zero policy made %d attempts, want 1", hits)
	}
}

// TestHTTPUplinkBatchOrderSurvivesRetry pins the satellite requirement:
// a retried batch is retransmitted as the identical payload, so the
// server never sees a reordered or partial slice.
func TestHTTPUplinkBatchOrderSurvivesRetry(t *testing.T) {
	fs := &flakyServer{failures: 2, mode: "503"}
	ts := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer ts.Close()

	rec := &sleepRecorder{}
	u := &HTTPUplink{BaseURL: ts.URL, Retry: retryPolicy(rec, 4)}
	batch := []Report{
		{Device: "a", AtSeconds: 1},
		{Device: "b", AtSeconds: 1},
		{Device: "a", AtSeconds: 2},
	}
	if err := u.SendBatch(batch); err != nil {
		t.Fatalf("batch after transient 503s: %v", err)
	}
	_, bodies := fs.stats()
	if len(bodies) != 3 {
		t.Fatalf("server saw %d payloads, want 3", len(bodies))
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("attempt %d payload differs from the first:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	ia := strings.Index(bodies[0], `"device":"a"`)
	ib := strings.Index(bodies[0], `"device":"b"`)
	if ia < 0 || ib < 0 || ib < ia {
		t.Fatalf("batch order not preserved in payload: %s", bodies[0])
	}
}

// TestBudgetExhaustionSurfacesCumulativeWait pins the satellite fix:
// backoff waits used to vanish without a trace, so a batch abandoned on
// its budget said nothing about how long the caller had already stalled.
// The error must now carry the cumulative wait, and the instrumented
// registry must show the same waits as observations.
func TestBudgetExhaustionSurfacesCumulativeWait(t *testing.T) {
	fs := &flakyServer{failures: 100, mode: "503"}
	ts := httptest.NewServer(http.HandlerFunc(fs.handler))
	defer ts.Close()

	m := obs.New()
	Instrument(m)
	defer pkgMet.Store(nil)

	rec := &sleepRecorder{}
	policy := retryPolicy(rec, 10)
	// 10 ms then 20 ms fits; the third wait (40 ms) would blow 35 ms.
	policy.Budget = 35 * time.Millisecond
	u := &HTTPUplink{BaseURL: ts.URL, Retry: policy}
	err := u.SendBatch([]Report{{Device: "p", AtSeconds: 1}})
	if err == nil {
		t.Fatal("persistent 503 must exhaust the retry budget")
	}

	var want time.Duration
	for _, d := range rec.delays {
		want += d
	}
	if want != 30*time.Millisecond {
		t.Fatalf("recorded waits sum to %v, want 30ms (10+20)", want)
	}
	msg := err.Error()
	if !strings.Contains(msg, "retry budget") || !strings.Contains(msg, "waited "+want.String()) {
		t.Fatalf("budget error hides the cumulative wait: %q", msg)
	}

	// The same waits must land in the telemetry registry.
	snap := m.TakeSnapshot()
	hj, ok := snap.Histograms["transport_backoff_seconds"]
	if !ok || hj.Count != uint64(len(rec.delays)) {
		t.Fatalf("backoff histogram = %+v, want %d observations", hj, len(rec.delays))
	}
	if snap.Counters["transport_retries_total"] != float64(len(rec.delays)) {
		t.Fatalf("retries counter = %v", snap.Counters["transport_retries_total"])
	}
	if snap.Counters["transport_retry_budget_exhausted_total"] != 1 {
		t.Fatalf("budget-exhausted counter = %v", snap.Counters["transport_retry_budget_exhausted_total"])
	}
}
