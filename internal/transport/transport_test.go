package transport

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"occusim/internal/rng"
)

func testReport() Report {
	return Report{
		Device:    "phone-1",
		AtSeconds: 12.5,
		Beacons: []BeaconReport{
			{ID: "C0FFEE00-BEEF-4A11-8000-000000000001/1/1", Distance: 2.1, RSSI: -64},
		},
	}
}

func TestHTTPUplinkPostsJSON(t *testing.T) {
	var got Report
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/observations" {
			t.Errorf("path = %s", r.URL.Path)
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("content type = %s", ct)
		}
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Error(err)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	u := &HTTPUplink{BaseURL: srv.URL}
	if u.Name() != "wifi-http" {
		t.Errorf("name = %s", u.Name())
	}
	if err := u.Send(testReport()); err != nil {
		t.Fatal(err)
	}
	if got.Device != "phone-1" || len(got.Beacons) != 1 || got.Beacons[0].Distance != 2.1 {
		t.Fatalf("server received %+v", got)
	}
}

func TestHTTPUplinkErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	u := &HTTPUplink{BaseURL: srv.URL}
	if err := u.Send(testReport()); err == nil {
		t.Fatal("5xx should error")
	}
	down := &HTTPUplink{BaseURL: "http://127.0.0.1:1"}
	if err := down.Send(testReport()); err == nil {
		t.Fatal("unreachable server should error")
	}
}

func TestSendFunc(t *testing.T) {
	calls := 0
	u := SendFunc{F: func(Report) error { calls++; return nil }, Label: "direct"}
	if u.Name() != "direct" {
		t.Errorf("name = %s", u.Name())
	}
	if err := u.Send(testReport()); err != nil || calls != 1 {
		t.Fatalf("send: err=%v calls=%d", err, calls)
	}
}

func TestBTRelayValidation(t *testing.T) {
	ok := SendFunc{F: func(Report) error { return nil }, Label: "x"}
	if _, err := NewBTRelay(nil, 0.1, rng.New(1)); err == nil {
		t.Error("nil uplink should fail")
	}
	if _, err := NewBTRelay(ok, -0.1, rng.New(1)); err == nil {
		t.Error("negative prob should fail")
	}
	if _, err := NewBTRelay(ok, 1.1, rng.New(1)); err == nil {
		t.Error("prob > 1 should fail")
	}
	if _, err := NewBTRelay(ok, 0.1, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestBTRelayDropsAtConfiguredRate(t *testing.T) {
	delivered := 0
	next := SendFunc{F: func(Report) error { delivered++; return nil }, Label: "x"}
	relay, err := NewBTRelay(next, 0.3, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if relay.Name() != "bluetooth-relay" {
		t.Errorf("name = %s", relay.Name())
	}
	failures := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if err := relay.Send(testReport()); err != nil {
			failures++
		}
	}
	rate := float64(failures) / n
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("drop rate = %v, want ≈0.3", rate)
	}
	attempts, drops := relay.Stats()
	if attempts != n || drops != failures {
		t.Fatalf("stats = %d/%d, want %d/%d", attempts, drops, n, failures)
	}
	if delivered != n-failures {
		t.Fatalf("delivered = %d", delivered)
	}
}

func TestQueueValidation(t *testing.T) {
	ok := SendFunc{F: func(Report) error { return nil }, Label: "x"}
	if _, err := NewQueue(nil, 1, 1); err == nil {
		t.Error("nil uplink should fail")
	}
	if _, err := NewQueue(ok, 0, 1); err == nil {
		t.Error("zero len should fail")
	}
	if _, err := NewQueue(ok, 1, 0); err == nil {
		t.Error("zero attempts should fail")
	}
}

func TestQueueFlushDeliversInOrder(t *testing.T) {
	var devices []string
	next := SendFunc{F: func(r Report) error { devices = append(devices, r.Device); return nil }, Label: "x"}
	q, _ := NewQueue(next, 10, 3)
	for _, d := range []string{"a", "b", "c"} {
		r := testReport()
		r.Device = d
		q.Enqueue(r)
	}
	if n := q.Flush(); n != 3 {
		t.Fatalf("delivered = %d", n)
	}
	if len(devices) != 3 || devices[0] != "a" || devices[2] != "c" {
		t.Fatalf("order = %v", devices)
	}
	if q.Pending() != 0 {
		t.Fatalf("pending = %d", q.Pending())
	}
}

func TestQueueRetriesFailuresUntilBudget(t *testing.T) {
	fails := 2
	attempts := 0
	next := SendFunc{F: func(Report) error {
		attempts++
		if attempts <= fails {
			return errors.New("transient")
		}
		return nil
	}, Label: "x"}
	q, _ := NewQueue(next, 10, 5)
	q.Enqueue(testReport())
	if n := q.Flush(); n != 0 {
		t.Fatalf("first flush delivered %d", n)
	}
	if q.Pending() != 1 {
		t.Fatal("report should remain queued")
	}
	q.Flush() // second failure
	if n := q.Flush(); n != 1 {
		t.Fatalf("third flush delivered %d", n)
	}
	sent, dropped := q.Stats()
	if sent != 1 || dropped != 0 {
		t.Fatalf("stats = %d/%d", sent, dropped)
	}
}

func TestQueueDropsAfterMaxAttempts(t *testing.T) {
	next := SendFunc{F: func(Report) error { return errors.New("down") }, Label: "x"}
	q, _ := NewQueue(next, 10, 2)
	q.Enqueue(testReport())
	q.Flush()
	q.Flush()
	if q.Pending() != 0 {
		t.Fatal("report should be dropped after budget")
	}
	_, dropped := q.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestQueueEvictsOldestWhenFull(t *testing.T) {
	next := SendFunc{F: func(Report) error { return errors.New("down") }, Label: "x"}
	q, _ := NewQueue(next, 2, 5)
	r1, r2, r3 := testReport(), testReport(), testReport()
	r1.Device, r2.Device, r3.Device = "1", "2", "3"
	if q.Enqueue(r1) {
		t.Fatal("no eviction expected")
	}
	q.Enqueue(r2)
	if !q.Enqueue(r3) {
		t.Fatal("eviction expected")
	}
	if q.Pending() != 2 {
		t.Fatalf("pending = %d", q.Pending())
	}
}
