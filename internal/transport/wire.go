// Binary wire codec support for the HTTP uplinks: content negotiation
// between JSON and the internal/wire frame format, the sticky 415
// downgrade, and the device-side shard splitter that pre-splits
// batches against the gateway's published ring so the gateway can
// forward frames instead of decoding and re-splitting them.
package transport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"occusim/internal/ibeacon"
	"occusim/internal/ring"
	"occusim/internal/wire"
)

// Codec selects the report batch encoding an uplink speaks.
type Codec int

const (
	// CodecJSON is the compatibility face every server accepts.
	CodecJSON Codec = iota
	// CodecBinary is the internal/wire frame format; a server that does
	// not speak it answers 415 and the uplink downgrades to JSON once,
	// stickily, per target.
	CodecBinary
)

// ParseCodec parses the -wire flag values.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	default:
		return CodecJSON, fmt.Errorf("transport: unknown wire codec %q (want json or binary)", s)
	}
}

func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// EncodeReports fills b from reports, parsing each beacon identity
// into its binary form. An unparseable identity fails the whole batch
// — the caller then falls back to JSON, which carries any string.
func EncodeReports(b *wire.Batch, reports []Report) error {
	for i := range reports {
		r := &reports[i]
		b.AddReport(r.Device, r.AtSeconds, r.Epoch, r.Seq)
		for _, br := range r.Beacons {
			id, err := ibeacon.ParseBeaconID(br.ID)
			if err != nil {
				return err
			}
			b.AddBeacon(wire.Beacon{ID: id, Distance: br.Distance, RSSI: br.RSSI})
		}
	}
	return nil
}

// DecodeReports renders a decoded wire batch back into report form,
// appending to dst — the gateway's re-split fallback and mixed-mode
// tests use it; the zero-alloc ingest paths stay on wire.Batch.
func DecodeReports(b *wire.Batch, dst []Report) []Report {
	for i := 0; i < b.Len(); i++ {
		span := b.ReportBeacons(i)
		beacons := make([]BeaconReport, len(span))
		for k, bc := range span {
			beacons[k] = BeaconReport{ID: bc.ID.String(), Distance: bc.Distance, RSSI: bc.RSSI}
		}
		dst = append(dst, Report{
			Device:    b.Devices[i],
			AtSeconds: b.At[i],
			Epoch:     b.Epoch[i],
			Seq:       b.Seq[i],
			Beacons:   beacons,
		})
	}
	return dst
}

// pooledClient is the default client the nil-client paths share: one
// tuned http.Transport so every uplink and shard exchange rides a
// persistent connection instead of redialing. The stock
// DefaultTransport caps idle connections at 2 per host, which makes a
// fleet of concurrent device uplinks hammer the dialer; the ingest
// fan-in is exactly the many-clients-one-host shape that cap punishes.
// Per-attempt deadlines still come from the request context (see
// DoJSON), so no Client.Timeout here.
var pooledClient = &http.Client{Transport: &http.Transport{
	MaxIdleConns:        1024,
	MaxIdleConnsPerHost: 256,
	IdleConnTimeout:     90 * time.Second,
}}

// PooledClient returns the shared keep-alive tuned HTTP client —
// callers that construct uplinks with an explicit client (cmd/loadgen,
// cmd/beacond) use it instead of per-uplink clients so the whole
// process shares one connection pool.
func PooledClient() *http.Client { return pooledClient }

// wireCount bumps the per-codec batch counter.
func wireCount(codec string) {
	if tm := pkgMet.Load(); tm != nil {
		switch codec {
		case "binary":
			tm.wireBinary.Inc()
		case "presplit":
			tm.wirePresplit.Inc()
		default:
			tm.wireJSON.Inc()
		}
	}
}

// noteDowngrade counts a sticky 415 JSON downgrade.
func noteDowngrade() {
	if tm := pkgMet.Load(); tm != nil {
		tm.wireDowngrades.Inc()
	}
}

// isUnsupportedMedia reports whether err is a 415 rejection — the
// negotiation signal that the target does not speak the binary codec.
func isUnsupportedMedia(err error) bool {
	code, ok := StatusCode(err)
	return ok && code == http.StatusUnsupportedMediaType
}

// postWireBatch encodes reports as one binary frame and posts it. The
// frame buffer is pooled; the call never burns retry budget on a 415 —
// DoJSON treats non-429 4xx as permanent, so a 415 comes back after
// exactly one attempt and the caller downgrades.
func postWireBatch(client *http.Client, url string, reports []Report, hdr map[string]string, policy RetryPolicy) ([]byte, error) {
	b := wire.GetBatch()
	defer wire.PutBatch(b)
	if err := EncodeReports(b, reports); err != nil {
		return nil, err
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	*buf = wire.AppendFrame(*buf, b)
	h := map[string]string{"Content-Type": wire.ContentType}
	for k, v := range hdr {
		h[k] = v
	}
	return DoJSONHeaders(client, http.MethodPost, url, *buf, h, policy)
}

// sendBatchBinary is the binary half of HTTPUplink.SendBatch: one
// frame to the batch endpoint, downgrading stickily on 415.
func (u *HTTPUplink) sendBatchBinary(reports []Report) error {
	_, err := postWireBatch(u.Client, u.BaseURL+"/api/v1/observations:batch", reports, nil, u.Retry)
	if err == nil {
		wireCount("binary")
		return nil
	}
	if isUnsupportedMedia(err) {
		// The server does not speak the codec and never will mid-run:
		// remember, resend as JSON now, and stop asking.
		u.jsonOnly.Store(true)
		noteDowngrade()
		return u.sendBatchJSON(reports)
	}
	return err
}

// sendBatchJSON is the historical JSON batch POST.
func (u *HTTPUplink) sendBatchJSON(reports []Report) error {
	body, err := json.Marshal(reports)
	if err != nil {
		return fmt.Errorf("transport: marshal batch: %w", err)
	}
	_, err = PostJSON(u.Client, u.BaseURL+"/api/v1/observations:batch", body, u.Retry)
	if err == nil {
		wireCount("json")
	}
	return err
}

// ShardSplitter is the device-side half of the pre-split protocol: a
// batch-sending uplink that fetches the gateway's published ring
// (GET /api/v1/ring), reproduces its routing locally, and uploads each
// batch as per-shard binary sections so the gateway forwards frames
// instead of decoding and re-splitting. Against a server that
// publishes no ring (a single bms box, 404) it degrades to plain
// binary frames; against one that answers 415 it downgrades stickily
// to JSON. The ring view refreshes on a wall-clock interval, so a
// MarkDown or rebalance leaves at most a refresh window of stale
// pre-splits — which the gateway detects by digest and re-splits
// server-side (see fleet's pre-split forward path). Safe for
// concurrent use.
type ShardSplitter struct {
	// BaseURL is the gateway root, e.g. "http://127.0.0.1:9090".
	BaseURL string
	// Client defaults to the shared pooled client when nil.
	Client *http.Client
	// Retry bounds retransmission of uploads and ring fetches.
	Retry RetryPolicy
	// Refresh is the ring re-fetch interval (default 2 s).
	Refresh time.Duration

	mu        sync.Mutex
	ring      *ring.Ring
	down      []bool
	digest    string
	fetchedAt time.Time
	jsonOnly  bool
}

// ringResponse is the GET /api/v1/ring payload (see fleet's handler).
type ringResponse struct {
	Digest   string   `json:"digest"`
	Replicas int      `json:"replicas"`
	Shards   []string `json:"shards"`
	Down     []bool   `json:"down"`
}

// Name implements Uplink.
func (s *ShardSplitter) Name() string { return "wifi-http-presplit" }

// Send implements Uplink via a one-report batch.
func (s *ShardSplitter) Send(r Report) error { return s.SendBatch([]Report{r}) }

// refreshInterval returns the effective ring re-fetch period.
func (s *ShardSplitter) refreshInterval() time.Duration {
	if s.Refresh > 0 {
		return s.Refresh
	}
	return 2 * time.Second
}

// ringView returns the current (ring, down, digest), refreshing from
// the gateway when the view is older than the refresh interval. A
// fetch failure (or a 404 from a non-gateway) leaves the splitter
// ringless until the next interval: uploads then go as plain binary
// frames, which every wire-speaking server ingests directly.
func (s *ShardSplitter) ringView() (*ring.Ring, []bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.fetchedAt) >= s.refreshInterval() {
		s.fetchedAt = time.Now()
		payload, err := GetJSON(s.Client, s.BaseURL+"/api/v1/ring", s.Retry)
		if err != nil {
			s.ring, s.down, s.digest = nil, nil, ""
		} else {
			var resp ringResponse
			if jerr := json.Unmarshal(payload, &resp); jerr != nil || len(resp.Shards) == 0 {
				s.ring, s.down, s.digest = nil, nil, ""
			} else if r, rerr := ring.New(resp.Shards, resp.Replicas); rerr != nil {
				s.ring, s.down, s.digest = nil, nil, ""
			} else {
				s.ring, s.down, s.digest = r, resp.Down, resp.Digest
			}
		}
	}
	return s.ring, s.down, s.digest
}

// SendBatch implements BatchSender: pre-split binary sections when the
// gateway publishes a ring, a plain binary frame when it does not, and
// sticky JSON after a 415.
func (s *ShardSplitter) SendBatch(reports []Report) error {
	if len(reports) == 0 {
		return nil
	}
	s.mu.Lock()
	jsonOnly := s.jsonOnly
	s.mu.Unlock()
	if jsonOnly {
		return s.sendJSON(reports)
	}
	r, down, digest := s.ringView()
	var err error
	if r == nil {
		_, err = postWireBatch(s.Client, s.BaseURL+"/api/v1/observations:batch", reports, nil, s.Retry)
		if err == nil {
			wireCount("binary")
			return nil
		}
	} else {
		err = s.sendPresplit(r, down, digest, reports)
		if err == nil {
			return nil
		}
	}
	if isUnsupportedMedia(err) {
		s.mu.Lock()
		s.jsonOnly = true
		s.mu.Unlock()
		noteDowngrade()
		return s.sendJSON(reports)
	}
	return err
}

// sendPresplit splits the batch by ring owner and uploads the sections
// under the digest header. Section order is shard-first-appearance,
// and each device's reports keep their order inside its section — the
// same stable split the gateway itself performs.
func (s *ShardSplitter) sendPresplit(r *ring.Ring, down []bool, digest string, reports []Report) error {
	members := r.Members()
	per := make([]*wire.Batch, members)
	order := make([]int, 0, members)
	defer func() {
		for _, b := range per {
			if b != nil {
				wire.PutBatch(b)
			}
		}
	}()
	for i := range reports {
		owner, err := r.Owner(reports[i].Device, down)
		if err != nil {
			return err
		}
		b := per[owner]
		if b == nil {
			b = wire.GetBatch()
			per[owner] = b
			order = append(order, owner)
		}
		if err := EncodeReports(b, reports[i:i+1]); err != nil {
			return err
		}
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	names := r.Names()
	for _, owner := range order {
		*buf = wire.AppendSection(*buf, names[owner])
		*buf = wire.AppendFrame(*buf, per[owner])
	}
	_, err := DoJSONHeaders(s.Client, http.MethodPost, s.BaseURL+"/api/v1/observations:batch", *buf,
		map[string]string{"Content-Type": wire.ContentType, wire.HeaderRingDigest: digest}, s.Retry)
	if err == nil {
		wireCount("presplit")
	}
	return err
}

// sendJSON is the sticky downgrade path.
func (s *ShardSplitter) sendJSON(reports []Report) error {
	body, err := json.Marshal(reports)
	if err != nil {
		return fmt.Errorf("transport: marshal batch: %w", err)
	}
	_, err = PostJSON(s.Client, s.BaseURL+"/api/v1/observations:batch", body, s.Retry)
	if err == nil {
		wireCount("json")
	}
	return err
}
