package transport

import (
	"fmt"
	"testing"
)

// recordingUplink captures per-report sends and batch sends separately.
type recordingUplink struct {
	sent    []Report
	batches [][]Report
	failN   int // fail the next N delivery attempts
}

func (r *recordingUplink) Name() string { return "recording" }

func (r *recordingUplink) Send(rep Report) error {
	if r.failN > 0 {
		r.failN--
		return fmt.Errorf("transport test: induced failure")
	}
	r.sent = append(r.sent, rep)
	return nil
}

func (r *recordingUplink) SendBatch(reps []Report) error {
	if r.failN > 0 {
		r.failN--
		return fmt.Errorf("transport test: induced failure")
	}
	r.batches = append(r.batches, append([]Report(nil), reps...))
	r.sent = append(r.sent, reps...)
	return nil
}

// sendOnly hides SendBatch (no embedding, so nothing is promoted),
// forcing the per-report fallback.
type sendOnly struct{ rec *recordingUplink }

func (s sendOnly) Name() string        { return "send-only" }
func (s sendOnly) Send(r Report) error { return s.rec.Send(r) }

func rep(device string, at float64) Report {
	return Report{Device: device, AtSeconds: at}
}

func TestBatchingValidation(t *testing.T) {
	if _, err := NewBatchingUplink(nil, BatchConfig{}); err == nil {
		t.Error("nil uplink should fail")
	}
	if _, err := NewBatchingUplink(&recordingUplink{}, BatchConfig{FlushSeconds: -1}); err == nil {
		t.Error("negative flush interval should fail")
	}
}

// TestBatchingFlushesOnInterval pins the coalescing clock: reports queue
// until one lands FlushSeconds past the oldest pending, then the whole
// batch goes out in one SendBatch, in order.
func TestBatchingFlushesOnInterval(t *testing.T) {
	rec := &recordingUplink{}
	b, err := NewBatchingUplink(rec, BatchConfig{FlushSeconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range []float64{0, 4, 8} {
		if err := b.Send(rep("d", at)); err != nil {
			t.Fatal(err)
		}
		if got := b.Pending(); got != i+1 {
			t.Fatalf("pending after %v = %d", at, got)
		}
	}
	if len(rec.batches) != 0 {
		t.Fatalf("flushed early: %v", rec.batches)
	}
	if err := b.Send(rep("d", 10)); err != nil {
		t.Fatal(err)
	}
	if len(rec.batches) != 1 || len(rec.batches[0]) != 4 {
		t.Fatalf("batches = %v, want one of 4", rec.batches)
	}
	for i, r := range rec.sent {
		if want := []float64{0, 4, 8, 10}[i]; r.AtSeconds != want {
			t.Fatalf("delivery order broken: %v", rec.sent)
		}
	}
	if b.Pending() != 0 {
		t.Fatalf("pending after flush = %d", b.Pending())
	}
}

// TestBatchingFlushesOnMaxBatch pins the size bound.
func TestBatchingFlushesOnMaxBatch(t *testing.T) {
	rec := &recordingUplink{}
	b, err := NewBatchingUplink(rec, BatchConfig{FlushSeconds: 1e9, MaxBatch: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := b.Send(rep("d", float64(i)*1e-3)); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.batches) != 2 {
		t.Fatalf("batches = %d, want 2 full flushes", len(rec.batches))
	}
	if b.Pending() != 1 {
		t.Fatalf("pending = %d, want the tail report", b.Pending())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(rec.sent) != 7 {
		t.Fatalf("sent = %d, want all 7", len(rec.sent))
	}
}

// TestBatchingFallsBackToSend pins the per-report fallback for uplinks
// without batch support, preserving order.
func TestBatchingFallsBackToSend(t *testing.T) {
	rec := &recordingUplink{}
	b, err := NewBatchingUplink(sendOnly{rec: rec}, BatchConfig{MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_ = b.Send(rep(fmt.Sprintf("d%d", i), 0))
	}
	if len(rec.batches) != 0 {
		t.Fatal("fallback used SendBatch")
	}
	if len(rec.sent) != 4 {
		t.Fatalf("sent = %d", len(rec.sent))
	}
	for i, r := range rec.sent {
		if r.Device != fmt.Sprintf("d%d", i) {
			t.Fatalf("order broken: %v", rec.sent)
		}
	}
}

// TestBatchingRetainsOnFailureAndRedelivers pins failure handling: a
// failed flush keeps the batch queued (bounded) and the next flush
// delivers it in the original order.
func TestBatchingRetainsOnFailureAndRedelivers(t *testing.T) {
	rec := &recordingUplink{failN: 1}
	b, err := NewBatchingUplink(rec, BatchConfig{MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = b.Send(rep("a", 0))
	if err := b.Send(rep("b", 0)); err == nil {
		t.Fatal("flush against failing uplink should report the error")
	}
	if b.Pending() != 2 {
		t.Fatalf("pending after failed flush = %d, want 2", b.Pending())
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(rec.sent) != 2 || rec.sent[0].Device != "a" || rec.sent[1].Device != "b" {
		t.Fatalf("redelivery broken: %v", rec.sent)
	}
	sent, dropped, flushes := b.Stats()
	if sent != 2 || dropped != 0 || flushes != 1 {
		t.Fatalf("stats = (%d, %d, %d)", sent, dropped, flushes)
	}
}

// TestBatchingBoundsPendingQueue pins the overflow policy: a backed-up
// queue drops the oldest reports first and never exceeds MaxPending.
func TestBatchingBoundsPendingQueue(t *testing.T) {
	rec := &recordingUplink{failN: 1 << 30} // never deliver
	b, err := NewBatchingUplink(rec, BatchConfig{MaxBatch: 4, MaxPending: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		_ = b.Send(rep(fmt.Sprintf("d%d", i), 0))
		if p := b.Pending(); p > 6 {
			t.Fatalf("pending %d exceeds bound", p)
		}
	}
	_, dropped, _ := b.Stats()
	if dropped == 0 {
		t.Fatal("overflow dropped nothing")
	}
	rec.failN = 0
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	// The survivors are the newest reports, still in order.
	for i := 1; i < len(rec.sent); i++ {
		if rec.sent[i-1].Device >= rec.sent[i].Device && len(rec.sent[i-1].Device) == len(rec.sent[i].Device) {
			t.Fatalf("survivor order broken: %v", rec.sent)
		}
	}
}

// TestQueueOverflowThenDrain pins the retry queue's behaviour across an
// outage: enqueues beyond capacity evict the oldest, and once the uplink
// recovers a sequence of flushes drains everything that survived, in
// order and within the attempt budget.
func TestQueueOverflowThenDrain(t *testing.T) {
	rec := &recordingUplink{failN: 1 << 30}
	q, err := NewQueue(sendOnly{rec: rec}, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	evictions := 0
	for i := 0; i < 12; i++ {
		if q.Enqueue(rep(fmt.Sprintf("r%02d", i), float64(i))) {
			evictions++
		}
	}
	if evictions != 7 {
		t.Fatalf("evictions = %d, want 7", evictions)
	}
	if q.Pending() != 5 {
		t.Fatalf("pending = %d, want capacity", q.Pending())
	}

	// One failing flush burns one attempt per queued report.
	if n := q.Flush(); n != 0 {
		t.Fatalf("failing flush delivered %d", n)
	}
	if q.Pending() != 5 {
		t.Fatalf("pending after failing flush = %d", q.Pending())
	}

	// Recovery: everything drains in order.
	rec.failN = 0
	if n := q.Flush(); n != 5 {
		t.Fatalf("drain delivered %d, want 5", n)
	}
	if q.Pending() != 0 {
		t.Fatalf("pending after drain = %d", q.Pending())
	}
	for i, r := range rec.sent {
		if want := fmt.Sprintf("r%02d", 7+i); r.Device != want {
			t.Fatalf("drain order: got %q at %d, want %q", r.Device, i, want)
		}
	}
	sent, dropped := q.Stats()
	if sent != 5 || dropped != 7 {
		t.Fatalf("stats = (%d, %d), want (5, 7)", sent, dropped)
	}
}

// TestQueueDropsAfterBudgetDuringDrain pins the attempt budget under a
// long outage: reports that exhaust maxAttempts are dropped, not
// retried forever.
func TestQueueDropsAfterBudgetDuringDrain(t *testing.T) {
	rec := &recordingUplink{failN: 1 << 30}
	q, err := NewQueue(sendOnly{rec: rec}, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(rep("a", 0))
	q.Enqueue(rep("b", 1))
	q.Flush() // attempt 1 fails
	q.Flush() // attempt 2 fails → budget exhausted, dropped
	if q.Pending() != 0 {
		t.Fatalf("pending = %d after budget exhaustion", q.Pending())
	}
	rec.failN = 0
	if n := q.Flush(); n != 0 {
		t.Fatalf("empty queue delivered %d", n)
	}
	_, dropped := q.Stats()
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
}
