package transport

import (
	"fmt"
	"sync"
	"time"
)

// BatchingUplink coalesces per-cycle reports into batches before handing
// them to the underlying uplink, so a crowd of devices reporting every
// scan cycle costs the server one ingest pass per flush interval instead
// of one lock acquisition and decode per report.
//
// The flush clock is the reports' own AtSeconds timestamps: a batch is
// flushed when it reaches MaxBatch reports or when the newest report is
// FlushSeconds past the oldest pending one. Driving the interval off
// report time (not the wall clock) makes the behaviour identical under
// simulated and real time; real-time clients that can stall between
// reports can additionally call Flush from a timer.
//
// The pending queue is bounded by MaxPending: when a slow or failing
// server lets the queue back up, the oldest reports are dropped first
// (the newest observation is the valuable one for occupancy tracking).
// Reports are always delivered in Send order. BatchingUplink is safe for
// concurrent use.
type BatchingUplink struct {
	next Uplink

	// FlushSeconds is the coalescing interval in report time (default 10).
	// MaxBatch flushes earlier when that many reports are pending
	// (default 64). MaxPending bounds the queue across failed flushes
	// (default 4 × MaxBatch).
	flushSeconds float64
	maxBatch     int
	maxPending   int
	seq          *Sequencer

	mu      sync.Mutex
	pending []Report
	sent    int
	dropped int
	flushes int
}

// BatchConfig parameterises NewBatchingUplink; zero fields take the
// documented defaults.
type BatchConfig struct {
	// FlushSeconds is the coalescing interval measured on the reports'
	// AtSeconds clock (default 10 s).
	FlushSeconds float64
	// MaxBatch flushes as soon as this many reports are pending
	// (default 64).
	MaxBatch int
	// MaxPending bounds the queue; the oldest reports are dropped beyond
	// it (default 4 × MaxBatch).
	MaxPending int
	// Sequencer, when set, stamps every queued report with its device's
	// next sequence number as it is accepted — before batching, so a
	// failed flush retransmits identical (Epoch, Seq) identities and the
	// server can dedupe the overlap. Nil sends reports as given.
	Sequencer *Sequencer
}

// NewBatchingUplink wraps next with report coalescing. When next also
// implements BatchSender the whole batch goes out in one exchange;
// otherwise reports are replayed through Send in order.
func NewBatchingUplink(next Uplink, cfg BatchConfig) (*BatchingUplink, error) {
	if next == nil {
		return nil, fmt.Errorf("transport: batching uplink needs an onward uplink")
	}
	if cfg.FlushSeconds < 0 || cfg.MaxBatch < 0 || cfg.MaxPending < 0 {
		return nil, fmt.Errorf("transport: batching bounds must be non-negative")
	}
	if cfg.FlushSeconds == 0 {
		cfg.FlushSeconds = 10
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 4 * cfg.MaxBatch
	}
	if cfg.MaxPending < cfg.MaxBatch {
		cfg.MaxPending = cfg.MaxBatch
	}
	return &BatchingUplink{
		next:         next,
		flushSeconds: cfg.FlushSeconds,
		maxBatch:     cfg.MaxBatch,
		maxPending:   cfg.MaxPending,
		seq:          cfg.Sequencer,
	}, nil
}

// Name implements Uplink.
func (b *BatchingUplink) Name() string { return "batched(" + b.next.Name() + ")" }

// Send implements Uplink: the report is queued and the queue is flushed
// when the batch bound or the flush interval is reached. A nil return
// means the report was accepted for delivery, not yet delivered.
// Nothing is dropped before the flush gets its chance: the MaxPending
// clamp applies only to what a failed flush leaves behind, so a queue
// that backed up during an outage drains loss-free the moment the
// server recovers.
func (b *BatchingUplink) Send(r Report) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.seq != nil {
		b.seq.Stamp(&r)
	}
	b.pending = append(b.pending, r)
	if len(b.pending) >= b.maxBatch ||
		r.AtSeconds-b.pending[0].AtSeconds >= b.flushSeconds {
		return b.flushLocked()
	}
	return nil
}

// Flush delivers everything pending regardless of the coalescing bounds
// (end of a run, a real-time timer, graceful shutdown).
func (b *BatchingUplink) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

// flushLocked delivers the pending batch; callers hold b.mu. On failure
// the reports stay queued for the next flush, subject to the MaxPending
// bound.
func (b *BatchingUplink) flushLocked() error {
	if len(b.pending) == 0 {
		return nil
	}
	batch := b.pending
	var err error
	if bs, ok := b.next.(BatchSender); ok {
		err = bs.SendBatch(batch)
		if err == nil {
			b.sent += len(batch)
		}
	} else {
		delivered := 0
		for _, r := range batch {
			if err = b.next.Send(r); err != nil {
				break
			}
			delivered++
		}
		b.sent += delivered
		batch = batch[delivered:]
	}
	if err != nil {
		// Keep the undelivered tail, clamped to the bound (oldest out).
		if over := len(batch) - b.maxPending; over > 0 {
			batch = batch[over:]
			b.dropped += over
		}
		b.pending = append(b.pending[:0], batch...)
		return fmt.Errorf("transport: batch flush: %w", err)
	}
	b.pending = b.pending[:0]
	b.flushes++
	return nil
}

// Pending returns the queued report count.
func (b *BatchingUplink) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Stats returns lifetime (sent, dropped, flushes) counts.
func (b *BatchingUplink) Stats() (sent, dropped, flushes int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sent, b.dropped, b.flushes
}

// AutoFlush starts a wall-clock flusher for real-time clients whose
// report stream can stall (leaving a tail below the batch bound). It
// returns a stop function; errors from timed flushes are dropped — the
// reports stay queued and are retried on the next tick.
func (b *BatchingUplink) AutoFlush(every time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = b.Flush()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
