package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func registryForTest() *Metrics {
	m := New()
	m.Counter("bms_ingest_reports_total", "reports accepted").Add(42)
	m.Gauge("bms_lease_epoch", "granted leadership epoch").Set(3)
	m.Counter("fleet_routed_total", "reports routed", L("shard", "s0")).Add(7)
	m.Counter("fleet_routed_total", "reports routed", L("shard", "s1")).Add(9)
	h := m.Timing("bms_ingest_seconds", "batch ingest latency")
	h.Observe(1500)
	h.Observe(3000)
	m.Sizes("bms_ingest_batch_size", "reports per batch").Observe(64)
	m.GaugeFunc("bms_gate_inflight", "admissions in flight", func() float64 { return 2 })
	m.Recorder().Record(EventLeaseClaim, map[string]any{"epoch": 3})
	return m
}

// TestExpositionRoundTrip: the hand-rolled writer must satisfy the
// hand-rolled validator — the pair is what CI runs against a live bmsd.
func TestExpositionRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := registryForTest().WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("our own exposition fails our validator: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE bms_ingest_reports_total counter",
		"bms_ingest_reports_total 42",
		`fleet_routed_total{shard="s0"} 7`,
		`fleet_routed_total{shard="s1"} 9`,
		"# TYPE bms_ingest_seconds histogram",
		`bms_ingest_seconds_bucket{le="+Inf"} 2`,
		"bms_ingest_seconds_count 2",
		"bms_gate_inflight 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals the
	// count, and each TYPE appears exactly once.
	if strings.Count(out, "# TYPE fleet_routed_total counter") != 1 {
		t.Fatal("label variants must share one TYPE header")
	}
}

func TestExpositionHandlerAndTelemetry(t *testing.T) {
	m := registryForTest()
	rr := httptest.NewRecorder()
	m.ExpositionHandler()(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Fatalf("metrics status %d", rr.Code)
	}
	if err := ValidateExposition(rr.Body.Bytes()); err != nil {
		t.Fatal(err)
	}

	rr = httptest.NewRecorder()
	m.TelemetryHandler()(rr, httptest.NewRequest("GET", "/api/v1/telemetry", nil))
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["bms_ingest_reports_total"] != 42 {
		t.Fatalf("telemetry counters = %v", snap.Counters)
	}
	if snap.Counters[`fleet_routed_total{shard="s1"}`] != 9 {
		t.Fatalf("labelled counter missing: %v", snap.Counters)
	}
	hj, ok := snap.Histograms["bms_ingest_seconds"]
	if !ok || hj.Count != 2 || hj.P99 < 3000 {
		t.Fatalf("telemetry histogram = %+v", hj)
	}
	if len(snap.Events) != 1 || snap.Events[0].Kind != EventLeaseClaim {
		t.Fatalf("telemetry events = %+v", snap.Events)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	bad := []struct {
		name, payload string
	}{
		{"garbage line", "!!!not a metric\n"},
		{"bad value", "x_total twelve\n"},
		{"bad name", "# TYPE 9lives counter\n"},
		{"unknown type", "# TYPE x histo\n"},
		{"typeless TYPE", "# TYPE x\n"},
		{"duplicate TYPE", "# TYPE x counter\n# TYPE x counter\n"},
		{"bad label pair", `x{shard=s0} 1` + "\n"},
		{"bare histogram sample", "# TYPE h histogram\nh 3\n"},
	}
	for _, tc := range bad {
		if err := ValidateExposition([]byte(tc.payload)); err == nil {
			t.Errorf("%s: validator accepted %q", tc.name, tc.payload)
		}
	}
	good := "# HELP x_total things\n# TYPE x_total counter\nx_total 1\n" +
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n" +
		"free_metric 3.5\nnan_metric NaN\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("validator rejected valid exposition: %v", err)
	}
}
