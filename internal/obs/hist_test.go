package obs

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramEmpty: zero observations must quantile to zero and
// snapshot to all-zero state — an unused stage renders as silence, not
// garbage.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := s.Quantile(q); v != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, v)
		}
	}
}

// TestHistogramSingleBucket: identical observations land in one bucket
// and every quantile answers that bucket's bound.
func TestHistogramSingleBucket(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1000) // bucket of 1000 spans [512, 1023]
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 100_000 {
		t.Fatalf("count/sum = %d/%d, want 100/100000", s.Count, s.Sum)
	}
	occupied := 0
	for _, n := range s.Buckets {
		if n > 0 {
			occupied++
		}
	}
	if occupied != 1 {
		t.Fatalf("%d buckets occupied, want 1", occupied)
	}
	want := BucketBound(bucketOf(1000))
	if want < 1000 || want >= 2000 {
		t.Fatalf("bucket bound %d does not cover 1000 within 2x", want)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if v := s.Quantile(q); v != want {
			t.Fatalf("Quantile(%v) = %d, want %d", q, v, want)
		}
	}
}

// TestHistogramSaturatingMax: values beyond the last power-of-two
// bound — including MaxInt64 — saturate into the final bucket instead
// of indexing out of range, and its reported bound is MaxInt64.
func TestHistogramSaturatingMax(t *testing.T) {
	var h Histogram
	huge := []int64{1 << 39, 1 << 45, 1 << 62, math.MaxInt64}
	for _, v := range huge {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Buckets[HistBuckets-1]; got != uint64(len(huge)) {
		t.Fatalf("max bucket holds %d, want %d", got, len(huge))
	}
	if v := s.Quantile(0.99); v != math.MaxInt64 {
		t.Fatalf("saturated Quantile(0.99) = %d, want MaxInt64", v)
	}
	// Negative observations clamp to the zero bucket, never underflow.
	h.Observe(-5)
	if got := h.Snapshot().Buckets[0]; got != 1 {
		t.Fatalf("negative observation landed in bucket 0 %d times, want 1", got)
	}
}

// TestHistogramQuantileLadder: a spread of observations must produce a
// nondecreasing quantile ladder whose answers bound the true values
// within the 2x bucket width.
func TestHistogramQuantileLadder(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	p50, p90, p99 := s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99)
	if !(p50 <= p90 && p90 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%d p90=%d p99=%d", p50, p90, p99)
	}
	if p50 < 500 || p50 >= 1024 {
		t.Fatalf("p50 = %d, want within 2x of 500", p50)
	}
	if p99 < 990 || p99 >= 2048 {
		t.Fatalf("p99 = %d, want within 2x of 990", p99)
	}
}

// TestHistogramMergeConcurrent: merging histograms that are being
// written concurrently must be race-free (the race detector is the
// assertion) and lose nothing once writers quiesce.
func TestHistogramMergeConcurrent(t *testing.T) {
	const writers = 4
	const perWriter = 5000
	shards := make([]*Histogram, writers)
	for i := range shards {
		shards[i] = &Histogram{}
	}
	var writersWG, mergerWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent merger: repeatedly rolls the shard histograms up while
	// they are being written.
	mergerWG.Add(1)
	go func() {
		defer mergerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var rollup Histogram
				for _, sh := range shards {
					rollup.Merge(sh)
				}
				s := rollup.Snapshot()
				var inBuckets uint64
				for _, n := range s.Buckets {
					inBuckets += n
				}
				// Bucket totals and Count are loaded independently, so a
				// mid-write view may disagree transiently — but neither can
				// exceed the total the writers will ever produce.
				if inBuckets > writers*perWriter || s.Count > writers*perWriter {
					t.Errorf("rollup overcounts: buckets=%d count=%d", inBuckets, s.Count)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				shards[w].Observe(int64(i%1000) + 1)
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	mergerWG.Wait()

	var final Histogram
	for _, sh := range shards {
		final.Merge(sh)
	}
	s := final.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("final merged count = %d, want %d", s.Count, writers*perWriter)
	}
	var inBuckets uint64
	for _, n := range s.Buckets {
		inBuckets += n
	}
	if inBuckets != writers*perWriter {
		t.Fatalf("final merged buckets hold %d, want %d", inBuckets, writers*perWriter)
	}
}

func TestBucketBoundEdges(t *testing.T) {
	if BucketBound(-1) != 0 {
		t.Fatal("negative index must bound at 0")
	}
	if BucketBound(0) != 0 {
		t.Fatalf("bucket 0 bound = %d, want 0", BucketBound(0))
	}
	if BucketBound(1) != 1 {
		t.Fatalf("bucket 1 bound = %d, want 1", BucketBound(1))
	}
	if BucketBound(HistBuckets-1) != math.MaxInt64 {
		t.Fatal("final bucket must bound at MaxInt64")
	}
	// Every bucket's bound maps back into that bucket.
	for i := 1; i < HistBuckets; i++ {
		if got := bucketOf(BucketBound(i)); got != i {
			t.Fatalf("bucketOf(BucketBound(%d)) = %d", i, got)
		}
	}
}
