// Package obs is the fleet's zero-dependency telemetry core: atomic
// counters and gauges, lock-free power-of-two-bucket latency
// histograms, and a bounded ring-buffer "flight recorder" for discrete
// control-plane events (lease transitions, fenced writes, breaker
// trips, migrations, WAL repairs).
//
// Everything is nil-safe: a nil *Metrics hands out nil handles, and
// every method on a nil handle is a no-op returning zeros. Hot paths
// therefore thread instrumentation unconditionally — the uninstrumented
// cost is one predictable nil branch per call site, no interface
// dispatch, no allocation, no lock.
//
// The registry renders two faces: Prometheus text exposition
// (WriteExposition, hand-rolled — this repo takes no dependencies) and
// a JSON snapshot (Snapshot) that includes the recent flight-recorder
// events, served by the bms and fleet HTTP layers as GET /metrics and
// GET /api/v1/telemetry.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension on a metric series (e.g. the shard
// a send-latency histogram measures).
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series kinds, doubling as the Prometheus TYPE keyword.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one registered time series: a name, its label set, and how
// to read it at collection time.
type series struct {
	name   string
	help   string
	kind   string
	labels []Label
	handle any            // the *Counter/*Gauge this series reads, nil for func-backed
	scalar func() float64 // counter/gauge value at scrape time
	hist   *Histogram     // histogram series instead of scalar
	scale  float64        // exposition divisor for hist bounds/sum (1e9: ns→s)
}

// Metrics is the registry. Construct with New; a nil *Metrics is a
// valid "telemetry off" registry whose registration methods return nil
// handles.
type Metrics struct {
	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
	rec    *Recorder
}

// DefaultRecorderCap bounds the flight recorder New attaches.
const DefaultRecorderCap = 512

// New builds an empty registry with an attached flight recorder.
func New() *Metrics {
	return &Metrics{
		byKey: make(map[string]*series),
		rec:   NewRecorder(DefaultRecorderCap),
	}
}

// Recorder returns the registry's flight recorder (nil on a nil
// registry — and a nil *Recorder drops every Record).
func (m *Metrics) Recorder() *Recorder {
	if m == nil {
		return nil
	}
	return m.rec
}

// seriesKey canonicalises name+labels for dedup.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register adds s unless an identically keyed series exists, in which
// case the existing one is returned (re-instrumenting a component must
// keep appending to the same series, not fork it).
func (m *Metrics) register(s *series) *series {
	key := seriesKey(s.name, s.labels)
	m.mu.Lock()
	defer m.mu.Unlock()
	if prev, ok := m.byKey[key]; ok && prev.kind == s.kind {
		return prev
	}
	m.byKey[key] = s
	m.series = append(m.series, s)
	return s
}

// Counter registers a counter series, or returns the existing handle
// when the same name+labels was registered before.
func (m *Metrics) Counter(name, help string, labels ...Label) *Counter {
	if m == nil {
		return nil
	}
	c := &Counter{}
	s := m.register(&series{
		name: name, help: help, kind: kindCounter, labels: labels, handle: c,
		scalar: func() float64 { return float64(c.Value()) },
	})
	h, _ := s.handle.(*Counter)
	return h
}

// Gauge registers a gauge series, or returns the existing handle when
// the same name+labels was registered before.
func (m *Metrics) Gauge(name, help string, labels ...Label) *Gauge {
	if m == nil {
		return nil
	}
	g := &Gauge{}
	s := m.register(&series{
		name: name, help: help, kind: kindGauge, labels: labels, handle: g,
		scalar: func() float64 { return float64(g.Value()) },
	})
	h, _ := s.handle.(*Gauge)
	return h
}

// CounterFunc registers a counter whose value is read by f at scrape
// time — for components that already keep their own lifetime counts
// (overload gates, routing counters): the hot path stays untouched and
// the scrape pays the read.
func (m *Metrics) CounterFunc(name, help string, f func() float64, labels ...Label) {
	if m == nil {
		return
	}
	m.register(&series{name: name, help: help, kind: kindCounter, labels: labels, scalar: f})
}

// GaugeFunc registers a gauge read by f at scrape time.
func (m *Metrics) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	if m == nil {
		return
	}
	m.register(&series{name: name, help: help, kind: kindGauge, labels: labels, scalar: f})
}

// Timing registers (or retrieves) a latency histogram observed in
// nanoseconds and exposed in seconds (name it *_seconds).
func (m *Metrics) Timing(name, help string, labels ...Label) *Histogram {
	return m.histogram(name, help, 1e9, labels)
}

// Sizes registers (or retrieves) a unitless histogram (batch sizes,
// frame counts), exposed in raw units.
func (m *Metrics) Sizes(name, help string, labels ...Label) *Histogram {
	return m.histogram(name, help, 1, labels)
}

func (m *Metrics) histogram(name, help string, scale float64, labels []Label) *Histogram {
	if m == nil {
		return nil
	}
	h := &Histogram{}
	s := m.register(&series{
		name: name, help: help, kind: kindHistogram, labels: labels,
		hist: h, scale: scale,
	})
	return s.hist
}

// Histogram is a lock-free fixed-bucket histogram over int64 values
// (nanoseconds on the latency paths). Bucket i holds values v with
// bits.Len64(v) == i — power-of-two bounds — and the last bucket
// saturates, so any value maps to exactly one atomic increment.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// HistBuckets is the fixed bucket count: bucket i spans
// [2^(i-1), 2^i) for i ≥ 1, bucket 0 holds {0}, and the final bucket
// saturates (≈9 minutes and beyond, for nanosecond observations).
const HistBuckets = 40

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= HistBuckets {
		return HistBuckets - 1
	}
	return idx
}

// BucketBound returns the inclusive upper bound of bucket i (the
// largest value that maps there); the final bucket is unbounded and
// reports the largest int64.
func BucketBound(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= HistBuckets-1 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value. Negative values clamp to zero (durations
// cannot be negative; a backwards clock must not crash telemetry).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Since records the nanoseconds elapsed from start.
func (h *Histogram) Since(start time.Time) { h.Observe(int64(time.Since(start))) }

// Merge adds o's observations into h (shard → fleet rollups). Both
// sides may be written concurrently: each bucket is read and added
// atomically, so the merge is a consistent-enough monitoring view,
// never a torn count.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     int64
	Buckets [HistBuckets]uint64
}

// Snapshot copies the histogram's state. Buckets are loaded
// individually, so a snapshot taken mid-observation can be off by the
// in-flight increments — monitoring semantics, not accounting.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Quantile returns the value at quantile q in [0, 1] — the upper bound
// of the bucket where the cumulative count crosses q — and 0 when the
// histogram is empty. Power-of-two buckets bound the relative error at
// 2×, which is what stage-level p99s need: order of magnitude and
// trend, not microsecond precision.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total))) // nearest-rank
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}

// collect copies the registry's series under the lock; reads of the
// individual series happen outside it (scalar funcs may take component
// locks of their own).
func (m *Metrics) collect() []*series {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*series(nil), m.series...)
}

// sortedLabels renders labels deterministically (sorted by key).
func sortedLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
