// Prometheus text exposition and the JSON telemetry snapshot — the two
// read faces of a Metrics registry — plus a tiny exposition-format
// validator so CI can fail on malformed lines without pulling in a
// client library.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
)

// WriteExposition renders the registry in Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE block per metric family in
// registration order, histograms as cumulative le buckets plus _sum and
// _count. A nil registry writes nothing, which is itself valid
// exposition.
func (m *Metrics) WriteExposition(w io.Writer) error {
	bw := bufio.NewWriter(w)
	seen := map[string]bool{}
	all := m.collect()
	for _, s := range all {
		if seen[s.name] {
			continue
		}
		seen[s.name] = true
		if s.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", s.name, escapeHelp(s.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind)
		for _, member := range all {
			if member.name != s.name {
				continue
			}
			writeSeries(bw, member)
		}
	}
	return bw.Flush()
}

func writeSeries(w io.Writer, s *series) {
	if s.hist == nil {
		fmt.Fprintf(w, "%s%s %s\n", s.name, renderLabels(s.labels, "", 0), formatFloat(s.scalar()))
		return
	}
	snap := s.hist.Snapshot()
	var cum uint64
	for i := 0; i < HistBuckets-1; i++ {
		cum += snap.Buckets[i]
		bound := float64(BucketBound(i)) / s.scale
		fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, renderLabels(s.labels, "le", bound), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, renderLabelsInf(s.labels), snap.Count)
	fmt.Fprintf(w, "%s_sum%s %s\n", s.name, renderLabels(s.labels, "", 0), formatFloat(float64(snap.Sum)/s.scale))
	fmt.Fprintf(w, "%s_count%s %d\n", s.name, renderLabels(s.labels, "", 0), snap.Count)
}

// renderLabels renders {k="v",...}, appending an le label when leKey is
// non-empty. Empty label sets render as nothing.
func renderLabels(labels []Label, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sortedLabels(labels) {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if leKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", leKey, formatFloat(le))
	}
	b.WriteByte('}')
	return b.String()
}

func renderLabelsInf(labels []Label) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range sortedLabels(labels) {
		fmt.Fprintf(&b, "%s=%q,", l.Key, l.Value)
	}
	b.WriteString(`le="+Inf"}`)
	return b.String()
}

// formatFloat renders values the way Prometheus expects: integers
// without an exponent where possible, shortest round-trip otherwise.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ExpositionHandler serves GET /metrics. Nil-safe: an uninstrumented
// server answers an empty (valid) exposition.
func (m *Metrics) ExpositionHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.WriteExposition(w)
	}
}

// --- JSON snapshot ----------------------------------------------------

// HistogramJSON is a histogram in the telemetry snapshot: count, sum
// and the standard quantile ladder, all in the histogram's raw units
// (nanoseconds for timings).
type HistogramJSON struct {
	Count uint64 `json:"count"`
	Sum   int64  `json:"sum"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
	P999  int64  `json:"p999"`
	Max   int64  `json:"max"`
}

// Snapshot is the JSON telemetry view: every scalar series keyed by
// name{labels}, every histogram with its quantile ladder, and the
// recent flight-recorder events.
type Snapshot struct {
	Counters   map[string]float64       `json:"counters"`
	Gauges     map[string]float64       `json:"gauges"`
	Histograms map[string]HistogramJSON `json:"histograms"`
	Events     []Event                  `json:"events"`
	EventTotal uint64                   `json:"eventTotal"`
}

// TakeSnapshot collects the registry into its JSON form. Nil registries
// return an empty (but non-nil-mapped) snapshot so consumers never
// branch on presence.
func (m *Metrics) TakeSnapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramJSON{},
		Events:     []Event{},
	}
	for _, s := range m.collect() {
		key := s.name + renderLabels(s.labels, "", 0)
		switch {
		case s.hist != nil:
			hs := s.hist.Snapshot()
			snap.Histograms[key] = HistogramJSON{
				Count: hs.Count,
				Sum:   hs.Sum,
				P50:   hs.Quantile(0.50),
				P90:   hs.Quantile(0.90),
				P99:   hs.Quantile(0.99),
				P999:  hs.Quantile(0.999),
				Max:   hs.Quantile(1),
			}
		case s.kind == kindCounter:
			snap.Counters[key] = s.scalar()
		default:
			snap.Gauges[key] = s.scalar()
		}
	}
	if rec := m.Recorder(); rec != nil {
		snap.Events = rec.Snapshot()
		snap.EventTotal = rec.Total()
	}
	return snap
}

// TelemetryHandler serves GET /api/v1/telemetry: the JSON snapshot,
// flight-recorder events included. Nil-safe.
func (m *Metrics) TelemetryHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		payload, err := json.Marshal(m.TakeSnapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(payload)
	}
}

// --- exposition validator ---------------------------------------------

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+-?\d+)?$`)
	labelPairRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// ValidateExposition checks a /metrics payload line by line: HELP/TYPE
// comments must be well-formed, every sample line must parse as
// name{labels} value, and sample names must belong to their family's
// declared TYPE (histogram samples may carry the _bucket/_sum/_count
// suffixes). It is the tiny stand-in for a scrape parser that lets CI
// fail a malformed exposition without an external dependency.
func ValidateExposition(payload []byte) error {
	types := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(payload))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("exposition line %d: malformed comment %q", lineNo, line)
			}
			if !metricNameRe.MatchString(fields[2]) {
				return fmt.Errorf("exposition line %d: bad metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("exposition line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("exposition line %d: unknown type %q", lineNo, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("exposition line %d: duplicate TYPE for %q", lineNo, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		match := sampleRe.FindStringSubmatch(line)
		if match == nil {
			return fmt.Errorf("exposition line %d: malformed sample %q", lineNo, line)
		}
		name, labels, value := match[1], match[3], match[4]
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("exposition line %d: bad value %q", lineNo, value)
			}
		}
		if labels != "" {
			for _, pair := range splitLabelPairs(labels) {
				if !labelPairRe.MatchString(pair) {
					return fmt.Errorf("exposition line %d: bad label pair %q", lineNo, pair)
				}
			}
		}
		if family, typ := histFamily(name, types); typ == "histogram" && name == family {
			return fmt.Errorf("exposition line %d: histogram %q sampled without _bucket/_sum/_count", lineNo, name)
		}
	}
	return sc.Err()
}

// histFamily resolves a sample name to its declared family, stripping
// histogram suffixes when the base name is a declared histogram.
func histFamily(name string, types map[string]string) (string, string) {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t, ok := types[base]; ok && t == "histogram" {
				return base, t
			}
		}
	}
	return name, types[name]
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
