// The flight recorder: a bounded ring buffer of discrete control-plane
// events. Metrics answer "how much, how fast"; the recorder answers
// "what happened, in what order" — which lease claim deposed which
// epoch, which breaker tripped before which migration — the last N
// events of the story, always resident, never allocating past the ring.
package obs

import (
	"sync"
	"time"
)

// Event is one recorded occurrence: a nanosecond wall timestamp, a
// kind tag, and structured fields. Seq is the event's position in the
// recorder's lifetime stream — gaps in a snapshot mean the ring wrapped
// over the missing span.
type Event struct {
	Seq     uint64         `json:"seq"`
	AtNanos int64          `json:"atNanos"`
	Kind    string         `json:"kind"`
	Fields  map[string]any `json:"fields,omitempty"`
}

// At returns the event's wall-clock time.
func (e Event) At() time.Time { return time.Unix(0, e.AtNanos) }

// Standard event kinds. Recorders accept any string; these name the
// fleet's control-plane vocabulary in one place so dashboards and
// tests never drift on spelling.
const (
	EventLeaseClaim   = "lease_claim"   // a shard granted a NEW leadership epoch
	EventLeaseReject  = "lease_reject"  // a claim lost to a higher/foreign grant
	EventFencedWrite  = "fenced_write"  // a stale-epoch write was rejected
	EventLeaseAdvance = "lease_advance" // a fenced write carried a newer epoch; grant advanced
	EventBreakerTrip  = "breaker_trip"  // a shard breaker opened
	EventBreakerClose = "breaker_close" // a shard breaker re-closed after probe success
	EventMigration    = "migration"     // device state moved between shards
	EventWALRepair    = "wal_repair"    // a torn WAL tail was truncated at recovery
	EventShardDown    = "shard_down"    // dispatch marked a shard down
	EventShardUp      = "shard_up"      // a health probe brought a shard back
)

// Recorder is the bounded ring. A nil *Recorder drops every Record —
// the same nil-safety contract as the metric handles. Writers contend
// on one mutex; control-plane events are rare (claims, trips, repairs),
// so the lock is never on a data path.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded; next seq
}

// NewRecorder builds a ring holding the most recent capacity events
// (minimum 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when the ring is
// full. fields is retained as-is; callers must not mutate it after.
func (r *Recorder) Record(kind string, fields map[string]any) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	r.ring[r.total%uint64(len(r.ring))] = Event{
		Seq: r.total, AtNanos: now, Kind: kind, Fields: fields,
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained events oldest-first. The copy is taken
// under the writer lock, so a snapshot is always a consistent prefix-
// free window: complete events, in order, never a half-written slot.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.ring))
	start := uint64(0)
	if r.total > n {
		start = r.total - n
	}
	out := make([]Event, 0, r.total-start)
	for seq := start; seq < r.total; seq++ {
		out = append(out, r.ring[seq%n])
	}
	return out
}

// Total returns how many events were ever recorded (including those the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
