package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestRecorderWraparound: past capacity the ring keeps the newest
// events, snapshot stays oldest-first, and Seq exposes what wrapped.
func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record("e", map[string]any{"i": i})
	}
	events := r.Snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot holds %d events, want 4", len(events))
	}
	for k, e := range events {
		wantSeq := uint64(6 + k)
		if e.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d (oldest-first ordering)", k, e.Seq, wantSeq)
		}
		if got := e.Fields["i"].(int); got != 6+k {
			t.Fatalf("event %d carries i=%d, want %d", k, got, 6+k)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
}

// TestRecorderUnderCapacity: fewer events than the ring holds must
// all be retained, in order, from seq 0.
func TestRecorderUnderCapacity(t *testing.T) {
	r := NewRecorder(64)
	r.Record(EventLeaseClaim, map[string]any{"epoch": 1})
	r.Record(EventFencedWrite, nil)
	events := r.Snapshot()
	if len(events) != 2 || events[0].Kind != EventLeaseClaim || events[1].Kind != EventFencedWrite {
		t.Fatalf("snapshot = %+v", events)
	}
	if events[0].Seq != 0 || events[1].Seq != 1 {
		t.Fatal("seqs must start at 0")
	}
	if events[0].AtNanos == 0 {
		t.Fatal("events must carry wall timestamps")
	}
}

// TestRecorderConcurrentWriters: many goroutines recording at once
// must produce a dense seq space (no drops, no duplicates) and a
// wrap-consistent snapshot.
func TestRecorderConcurrentWriters(t *testing.T) {
	const writers = 8
	const perWriter = 500
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record("k", map[string]any{"w": w, "i": i})
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != writers*perWriter {
		t.Fatalf("total = %d, want %d", r.Total(), writers*perWriter)
	}
	events := r.Snapshot()
	if len(events) != 256 {
		t.Fatalf("snapshot holds %d, want full ring of 256", len(events))
	}
	for k := 1; k < len(events); k++ {
		if events[k].Seq != events[k-1].Seq+1 {
			t.Fatalf("snapshot seqs not dense at %d: %d then %d", k, events[k-1].Seq, events[k].Seq)
		}
	}
	if last := events[len(events)-1].Seq; last != writers*perWriter-1 {
		t.Fatalf("newest seq = %d, want %d", last, writers*perWriter-1)
	}
}

// TestRecorderSnapshotWhileWriting: snapshots taken during a write
// storm must always be internally consistent — dense seqs, fully
// populated events — never a half-written slot.
func TestRecorderSnapshotWhileWriting(t *testing.T) {
	r := NewRecorder(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				r.Record("storm", map[string]any{"payload": fmt.Sprintf("event-%d", i)})
				i++
			}
		}
	}()
	for snap := 0; snap < 200; snap++ {
		events := r.Snapshot()
		for k, e := range events {
			if e.Kind != "storm" {
				t.Fatalf("snapshot %d event %d torn: kind %q", snap, k, e.Kind)
			}
			if e.Fields["payload"] != fmt.Sprintf("event-%d", e.Seq) {
				t.Fatalf("snapshot %d event %d fields do not match its seq %d: %v", snap, k, e.Seq, e.Fields)
			}
			if k > 0 && e.Seq != events[k-1].Seq+1 {
				t.Fatalf("snapshot %d seqs not dense", snap)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestRecorderMinimumCapacity(t *testing.T) {
	r := NewRecorder(0)
	r.Record("a", nil)
	r.Record("b", nil)
	events := r.Snapshot()
	if len(events) != 1 || events[0].Kind != "b" {
		t.Fatalf("capacity-clamped ring = %+v, want just the newest", events)
	}
}
