package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var m *Metrics
	c := m.Counter("x_total", "")
	g := m.Gauge("x", "")
	h := m.Timing("x_seconds", "")
	m.CounterFunc("f_total", "", func() float64 { return 1 })
	m.GaugeFunc("f", "", func() float64 { return 1 })
	c.Inc()
	c.Add(3)
	g.Set(5)
	g.Add(-2)
	h.Observe(100)
	h.Since(time.Now())
	h.Merge(h)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var rec *Recorder
	rec.Record(EventLeaseClaim, nil)
	if rec.Snapshot() != nil || rec.Total() != 0 {
		t.Fatal("nil recorder must be inert")
	}
	var sb strings.Builder
	if err := m.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, want empty", sb.String())
	}
	snap := m.TakeSnapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms)+len(snap.Events) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestCounterGauge(t *testing.T) {
	m := New()
	c := m.Counter("ingest_total", "reports ingested")
	g := m.Gauge("inflight", "calls in flight")
	for i := 0; i < 10; i++ {
		c.Inc()
	}
	c.Add(5)
	g.Set(7)
	g.Add(-3)
	if c.Value() != 15 {
		t.Fatalf("counter = %d, want 15", c.Value())
	}
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
	// Re-registering the same series returns the same handle.
	if c2 := m.Counter("ingest_total", "reports ingested"); c2 != c {
		t.Fatal("re-registered counter forked a new series")
	}
	// Same name, different labels: distinct series.
	cl := m.Counter("ingest_total", "", L("shard", "s0"))
	if cl == c {
		t.Fatal("labelled series must be distinct from the bare one")
	}
}

func TestConcurrentCounters(t *testing.T) {
	m := New()
	c := m.Counter("c_total", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", c.Value())
	}
}
