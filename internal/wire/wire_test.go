package wire

import (
	"math"
	"strings"
	"testing"

	"occusim/internal/ibeacon"
)

// mkBeacon builds a distinct beacon identity from a small seed.
func mkBeacon(n int, dist, rssi float64) Beacon {
	var id ibeacon.BeaconID
	for i := range id.UUID {
		id.UUID[i] = byte(n + i)
	}
	id.Major = uint16(n)
	id.Minor = uint16(n * 7)
	return Beacon{ID: id, Distance: dist, RSSI: rssi}
}

// sampleBatch exercises every field class: multiple devices, repeated
// devices, empty beacon lists, non-finite floats, max stamps.
func sampleBatch() *Batch {
	b := &Batch{}
	b.AddReport("phone-1", 12.5, 1, 1)
	b.AddBeacon(mkBeacon(1, 0.5, -41))
	b.AddBeacon(mkBeacon(2, 3.25, -68.5))
	b.AddReport("phone-2", math.Inf(1), math.MaxUint64, 0)
	b.AddReport("phone-1", math.NaN(), 2, 9)
	b.AddBeacon(mkBeacon(3, math.Inf(-1), math.NaN()))
	b.AddReport("", 0, 0, 0) // empty device name is encodable; ingest rejects it
	return b
}

// sameFloat compares floats with NaN equal to NaN, bit-level intent.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func assertBatchEqual(t *testing.T, want, got *Batch) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("decoded %d reports, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Devices[i] != want.Devices[i] {
			t.Fatalf("report %d device %q, want %q", i, got.Devices[i], want.Devices[i])
		}
		if !sameFloat(got.At[i], want.At[i]) {
			t.Fatalf("report %d at %v, want %v", i, got.At[i], want.At[i])
		}
		if got.Epoch[i] != want.Epoch[i] || got.Seq[i] != want.Seq[i] {
			t.Fatalf("report %d stamps (%d,%d), want (%d,%d)",
				i, got.Epoch[i], got.Seq[i], want.Epoch[i], want.Seq[i])
		}
		gb, wb := got.ReportBeacons(i), want.ReportBeacons(i)
		if len(gb) != len(wb) {
			t.Fatalf("report %d has %d beacons, want %d", i, len(gb), len(wb))
		}
		for j := range wb {
			if gb[j].ID != wb[j].ID || !sameFloat(gb[j].Distance, wb[j].Distance) || !sameFloat(gb[j].RSSI, wb[j].RSSI) {
				t.Fatalf("report %d beacon %d = %+v, want %+v", i, j, gb[j], wb[j])
			}
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	want := sampleBatch()
	frame := AppendFrame(nil, want)
	got := &Batch{}
	if err := DecodeFrame(frame, got); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	assertBatchEqual(t, want, got)
}

func TestEmptyBatchRoundTrip(t *testing.T) {
	frame := AppendFrame(nil, &Batch{})
	got := &Batch{}
	if err := DecodeFrame(frame, got); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Len() != 0 {
		t.Fatalf("decoded %d reports from an empty batch", got.Len())
	}
}

func TestBatchReuseAcrossFrames(t *testing.T) {
	// A pooled batch decodes frame after frame; each decode must fully
	// replace the previous contents.
	b := &Batch{}
	big := sampleBatch()
	if err := DecodeFrame(AppendFrame(nil, big), b); err != nil {
		t.Fatal(err)
	}
	small := &Batch{}
	small.AddReport("solo", 1, 1, 2)
	small.AddBeacon(mkBeacon(9, 1.5, -50))
	if err := DecodeFrame(AppendFrame(nil, small), b); err != nil {
		t.Fatal(err)
	}
	assertBatchEqual(t, small, b)
}

func TestSteadyStateDecodeAllocs(t *testing.T) {
	// The zero-alloc claim: once the intern table has seen the device
	// population and the column slices have grown, decoding further
	// frames of the same shape allocates nothing.
	src := &Batch{}
	for i := 0; i < 32; i++ {
		src.AddReport("device-"+strings.Repeat("x", i%4), float64(i), 1, uint64(i))
		src.AddBeacon(mkBeacon(i, float64(i), -float64(40+i)))
	}
	frame := AppendFrame(nil, src)
	b := &Batch{}
	if err := DecodeFrame(frame, b); err != nil { // warm the slices + intern table
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeFrame(frame, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state DecodeFrame allocates %.1f objects/op, want 0", allocs)
	}
}

func TestDecodeFrameRejectsTrailingBytes(t *testing.T) {
	frame := AppendFrame(nil, sampleBatch())
	if err := DecodeFrame(append(frame, 0x00), &Batch{}); err == nil {
		t.Fatal("DecodeFrame accepted a frame with trailing bytes")
	}
}

func TestDecodeFrameShort(t *testing.T) {
	frame := AppendFrame(nil, sampleBatch())
	for _, cut := range []int{0, 1, frameHeaderLen - 1, frameHeaderLen, len(frame) - 1} {
		if err := DecodeFrame(frame[:cut], &Batch{}); err == nil {
			t.Fatalf("DecodeFrame accepted a frame truncated to %d bytes", cut)
		}
	}
}

func TestScanWholeStream(t *testing.T) {
	var stream []byte
	want := 0
	for i := 0; i < 5; i++ {
		b := &Batch{}
		b.AddReport("dev", float64(i), 1, uint64(i))
		stream = AppendFrame(stream, b)
		want++
	}
	seen := 0
	valid, err := Scan(stream, func(payload []byte) error {
		seen++
		return DecodePayload(payload, &Batch{})
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if valid != len(stream) || seen != want {
		t.Fatalf("Scan consumed %d/%d bytes over %d frames, want %d frames", valid, len(stream), seen, want)
	}
}

func TestScanTornTail(t *testing.T) {
	// WAL-scanner contract: a frame truncated mid-payload is a torn
	// tail — the valid prefix stands and no error is reported.
	whole := AppendFrame(nil, sampleBatch())
	stream := append(append([]byte(nil), whole...), whole[:len(whole)-3]...)
	frames := 0
	valid, err := Scan(stream, func([]byte) error { frames++; return nil })
	if err != nil {
		t.Fatalf("torn tail must not error, got %v", err)
	}
	if valid != len(whole) || frames != 1 {
		t.Fatalf("valid=%d frames=%d, want valid=%d frames=1", valid, frames, len(whole))
	}
}

func TestScanCorruption(t *testing.T) {
	whole := AppendFrame(nil, sampleBatch())
	cases := map[string]func([]byte) []byte{
		"bad version": func(s []byte) []byte { s[len(whole)] ^= 0xFF; return s },
		"bad crc":     func(s []byte) []byte { s[len(s)-1] ^= 0x01; return s },
		"oversized length": func(s []byte) []byte {
			s[len(whole)+1] = 0xFF
			s[len(whole)+2] = 0xFF
			s[len(whole)+3] = 0xFF
			s[len(whole)+4] = 0xFF
			return s
		},
	}
	for name, corrupt := range cases {
		stream := append(append([]byte(nil), whole...), whole...)
		stream = corrupt(stream)
		frames := 0
		valid, err := Scan(stream, func([]byte) error { frames++; return nil })
		if err == nil {
			t.Fatalf("%s: corruption must error", name)
		}
		if valid != len(whole) || frames != 1 {
			t.Fatalf("%s: valid=%d frames=%d, want the clean prefix (%d bytes, 1 frame)",
				name, valid, frames, len(whole))
		}
	}
}

func TestScanReportsMatchesDecode(t *testing.T) {
	want := sampleBatch()
	payload := AppendPayload(nil, want)
	i := 0
	n, err := ScanReports(payload, func(device []byte, at float64, epoch, seq uint64) error {
		if string(device) != want.Devices[i] || !sameFloat(at, want.At[i]) ||
			epoch != want.Epoch[i] || seq != want.Seq[i] {
			t.Fatalf("report %d meta (%q,%v,%d,%d), want (%q,%v,%d,%d)",
				i, device, at, epoch, seq, want.Devices[i], want.At[i], want.Epoch[i], want.Seq[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("ScanReports: %v", err)
	}
	if n != want.Len() || i != want.Len() {
		t.Fatalf("ScanReports visited %d/%d reports, want %d", i, n, want.Len())
	}
}

func TestSectionsRoundTrip(t *testing.T) {
	shards := []string{"shard-0", "shard-1", "shard-2"}
	batches := make([]*Batch, len(shards))
	var body []byte
	for i, name := range shards {
		b := &Batch{}
		b.AddReport("dev-"+name, float64(i), 1, uint64(i+1))
		b.AddBeacon(mkBeacon(i, 2, -55))
		batches[i] = b
		body = AppendSection(body, name)
		body = AppendFrame(body, b)
	}
	i := 0
	err := ScanSections(body, func(shard []byte, frame, payload []byte) error {
		if string(shard) != shards[i] {
			t.Fatalf("section %d shard %q, want %q", i, shard, shards[i])
		}
		got := &Batch{}
		if err := DecodeFrame(frame, got); err != nil {
			t.Fatalf("section %d frame: %v", i, err)
		}
		assertBatchEqual(t, batches[i], got)
		fromPayload := &Batch{}
		if err := DecodePayload(payload, fromPayload); err != nil {
			t.Fatalf("section %d payload: %v", i, err)
		}
		assertBatchEqual(t, batches[i], fromPayload)
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("ScanSections: %v", err)
	}
	if i != len(shards) {
		t.Fatalf("scanned %d sections, want %d", i, len(shards))
	}
}

func TestScanSectionsTruncated(t *testing.T) {
	body := AppendSection(nil, "shard-0")
	body = AppendFrame(body, sampleBatch())
	for _, cut := range []int{len(body) - 1, len(body) - 10, 3} {
		if err := ScanSections(body[:cut], func([]byte, []byte, []byte) error { return nil }); err == nil {
			t.Fatalf("ScanSections accepted a body truncated to %d bytes", cut)
		}
	}
}
