package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzWireFrame throws arbitrary byte streams at the frame scanner and
// holds it to the WAL scanner's recovery contract: never panic, never
// read past the image, and classify every stream into a valid prefix
// of whole frames plus either a torn tail (not an error) or corruption
// (a loud error). The blessed prefix must itself be a clean stream —
// re-scanning it yields the same frames — and every payload the
// scanner hands out must decode.
func FuzzWireFrame(f *testing.F) {
	one := AppendFrame(nil, sampleBatch())
	small := &Batch{}
	small.AddReport("d", 1, 1, 1)
	two := AppendFrame(append([]byte(nil), one...), small)
	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	f.Add(two[:len(two)-3])                // torn final frame
	f.Add(AppendFrame(nil, &Batch{}))      // empty batch
	corrupt := append([]byte(nil), two...) // flip a payload byte under the CRC
	corrupt[len(one)+frameHeaderLen+2] ^= 0xff
	f.Add(corrupt)
	badver := append([]byte(nil), one...)
	badver[0] ^= 0xff
	f.Add(badver)
	huge := make([]byte, frameHeaderLen)
	huge[0] = Version
	binary.LittleEndian.PutUint32(huge[1:5], uint32(MaxFramePayload+1))
	f.Add(append(huge, 0xab))

	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		valid, err := Scan(data, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if err == nil && valid < len(data) {
			// A clean stop short of the end must be a torn tail: the
			// remainder is too short to hold another whole frame.
			rest := data[valid:]
			if len(rest) >= frameHeaderLen {
				n := binary.LittleEndian.Uint32(rest[1:5])
				if rest[0] == Version && n <= MaxFramePayload && len(rest) >= frameHeaderLen+int(n) {
					t.Fatalf("scanner stopped at %d with a whole decodable frame remaining", valid)
				}
			}
		}

		// The blessed prefix is a clean stream: scanning it again finds
		// the same frames and no tail at all.
		var again [][]byte
		revalid, reerr := Scan(data[:valid], func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		})
		if reerr != nil || revalid != valid {
			t.Fatalf("re-scan of the valid prefix: valid=%d err=%v (first pass said %d)", revalid, reerr, valid)
		}
		if len(again) != len(payloads) {
			t.Fatalf("re-scan found %d frames, first pass %d", len(again), len(payloads))
		}
		b := &Batch{}
		for i := range again {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("frame %d diverged between scans", i)
			}
			// Every payload the scanner blesses decodes (the CRC passed,
			// so the batch grammar must parse or the encoder/decoder
			// disagree) — unless the fuzzer forged a frame whose CRC
			// happens to cover garbage, which DecodePayload must still
			// reject without panicking.
			_ = DecodePayload(payloads[i], b)
		}

		// A fresh frame appended to the prefix is found by a re-scan —
		// the stream stays appendable after a repair truncation.
		next := &Batch{}
		next.AddReport("appended", 2, 3, 4)
		extended := AppendFrame(append([]byte(nil), data[:valid]...), next)
		n := 0
		exvalid, exerr := Scan(extended, func([]byte) error { n++; return nil })
		if exerr != nil || exvalid != len(extended) || n != len(payloads)+1 {
			t.Fatalf("append after repair: valid=%d/%d frames=%d err=%v, want %d frames",
				exvalid, len(extended), n, exerr, len(payloads)+1)
		}
	})
}

// FuzzWireBatchRoundTrip builds a batch from fuzzed report fields,
// encodes it, and asserts the decode is bit-identical — floats compared
// on their bits so NaN payloads and infinities survive.
func FuzzWireBatchRoundTrip(f *testing.F) {
	f.Add("phone-1", 12.5, uint64(1), uint64(2), uint16(100), uint16(7), 0.5, -41.0, 3)
	f.Add("", math.NaN(), uint64(0), uint64(0), uint16(0), uint16(0), math.Inf(1), math.Inf(-1), 0)
	f.Add("device-with-a-long-name-\x00\xff", math.MaxFloat64, uint64(math.MaxUint64), uint64(math.MaxUint64),
		uint16(65535), uint16(65535), -0.0, 1e-300, 17)
	f.Fuzz(func(t *testing.T, device string, at float64, epoch, seq uint64,
		major, minor uint16, dist, rssi float64, beacons int) {
		if beacons < 0 || beacons > 64 {
			return
		}
		want := &Batch{}
		// Two reports sharing the device name exercise interning; the
		// fuzzed one carries the beacon fan-out.
		want.AddReport(device, at, epoch, seq)
		for i := 0; i < beacons; i++ {
			bc := mkBeacon(i, dist, rssi)
			bc.ID.Major, bc.ID.Minor = major, minor
			want.AddBeacon(bc)
		}
		want.AddReport(device, at+1, epoch, seq+1)

		frame := AppendFrame(nil, want)
		got := &Batch{}
		if err := DecodeFrame(frame, got); err != nil {
			t.Fatalf("DecodeFrame of a freshly encoded batch: %v", err)
		}
		assertBatchEqual(t, want, got)

		// Encoding the decoded batch reproduces the same bytes — the
		// codec is canonical, which the CRC forwarding path relies on.
		if !bytes.Equal(AppendFrame(nil, got), frame) {
			t.Fatal("re-encode of the decoded batch diverged from the original frame")
		}
	})
}
