// Package wire is the binary wire protocol for device report batches —
// the length-prefixed, CRC-checked frame format devices, gateways and
// shards exchange instead of JSON on the hot ingest path.
//
// A frame is:
//
//	[0]    version byte (Version)
//	[1:5]  u32 LE payload length
//	[5:9]  u32 CRC32-C of the payload
//	[9:…]  payload
//
// The payload is one batch record in the same style as the store WAL's
// binary observation records (PR 6): a u32 LE report count, then per
// report a uvarint-length device name, the 8 raw bits of the float64
// report time (NaN/Inf-safe — no text round-trip), uvarint epoch and
// sequence stamps, a uvarint beacon count, and per beacon a fixed
// 36-byte record: 16-byte UUID, u16 LE major, u16 LE minor, and the
// raw float64 bits of distance and RSSI. Beacon identities travel as
// parsed binary, so the receiving side never re-parses the
// "UUID/major/minor" string form — the single biggest per-report
// allocation on the JSON path.
//
// Decode fills a struct-of-arrays Batch (PR 3 ble-stage style) whose
// slices are reused across frames via a sync.Pool; device names are
// interned per Batch so a steady-state decode of a chatty fleet
// allocates nothing.
//
// The frame scanner follows the WAL scanner's recovery contract: a
// stream is a valid prefix of whole frames, then either a torn tail
// (truncated mid-frame: not an error, the prefix stands) or corruption
// (bad version, oversized length, CRC mismatch: a loud error). HTTP
// faces additionally require the valid prefix to cover the whole body.
//
// Pre-split uploads concatenate sections, each a uvarint-length shard
// name followed by one frame, so a gateway whose ring digest matches
// the device's can forward each frame verbatim to its shard without
// decoding a single beacon.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync"

	"occusim/internal/ibeacon"
)

// Version is the frame format version this package speaks. A decoder
// rejects frames with any other version byte, which is how the format
// evolves: bump the byte, teach the decoder both.
const Version = 0x01

// ContentType negotiates the binary codec over HTTP. A server that
// does not speak it answers 415 and the client downgrades to JSON.
const ContentType = "application/x-occusim-wire"

// HeaderRingDigest carries the ring digest a device pre-split against
// (request) and the digest the gateway is currently routing with
// (response), so a stale splitter refreshes without an extra probe.
const HeaderRingDigest = "X-Ring-Digest"

// MaxFramePayload bounds one frame's payload (64 MiB): far above any
// real batch, low enough that a corrupt length prefix cannot drive an
// allocation.
const MaxFramePayload = 1 << 26

// frameHeaderLen is version + length + CRC.
const frameHeaderLen = 1 + 4 + 4

// beaconWire is the fixed per-beacon encoding: UUID + major + minor +
// distance bits + RSSI bits.
const beaconWire = 16 + 2 + 2 + 8 + 8

// minReportWire is the smallest possible per-report encoding (empty
// device name, zero stamps, no beacons); the count guard divides by it.
const minReportWire = 1 + 8 + 1 + 1 + 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrShortFrame marks a frame truncated mid-payload — a torn tail the
// scanner stops cleanly at, or a short HTTP body the ingest face 400s.
var ErrShortFrame = fmt.Errorf("wire: truncated frame")

// Beacon is one sighted beacon: parsed identity plus the estimated
// distance and filtered RSSI, exactly transport.BeaconReport with the
// identity in binary.
type Beacon struct {
	ID             ibeacon.BeaconID
	Distance, RSSI float64
}

// Batch is a decoded report batch in struct-of-arrays form: column i
// of each slice is report i, and ReportBeacons(i) is its beacon span
// in the shared Beacons backing array. Append with AddReport and
// AddBeacon; reuse across frames via Reset (or the package pool).
type Batch struct {
	Devices []string
	At      []float64 // report times, seconds on the building clock
	Epoch   []uint64
	Seq     []uint64
	Beacons []Beacon

	// beaconOff[i] is report i's first index into Beacons; report i's
	// span ends at beaconOff[i+1] (or len(Beacons) for the last).
	beaconOff []int32

	// intern maps decoded device names to their canonical string, so
	// steady-state decodes of a recurring device population allocate no
	// name strings. Bounded; survives Reset on purpose.
	intern map[string]string
}

// maxInterned bounds the per-Batch device-name intern table.
const maxInterned = 4096

// Len returns the report count.
func (b *Batch) Len() int { return len(b.Devices) }

// Reset empties the batch, keeping capacity and the intern table.
func (b *Batch) Reset() {
	b.Devices = b.Devices[:0]
	b.At = b.At[:0]
	b.Epoch = b.Epoch[:0]
	b.Seq = b.Seq[:0]
	b.Beacons = b.Beacons[:0]
	b.beaconOff = b.beaconOff[:0]
}

// AddReport appends a report column; its beacons follow via AddBeacon.
func (b *Batch) AddReport(device string, at float64, epoch, seq uint64) {
	b.Devices = append(b.Devices, device)
	b.At = append(b.At, at)
	b.Epoch = append(b.Epoch, epoch)
	b.Seq = append(b.Seq, seq)
	b.beaconOff = append(b.beaconOff, int32(len(b.Beacons)))
}

// AddBeacon appends one beacon to the most recently added report.
func (b *Batch) AddBeacon(bc Beacon) {
	b.Beacons = append(b.Beacons, bc)
}

// ReportBeacons returns report i's beacon span (a view into the shared
// backing array, valid until the next Reset).
func (b *Batch) ReportBeacons(i int) []Beacon {
	start := b.beaconOff[i]
	end := int32(len(b.Beacons))
	if i+1 < len(b.beaconOff) {
		end = b.beaconOff[i+1]
	}
	return b.Beacons[start:end]
}

// internDevice canonicalizes a decoded device name. The map lookup
// with a string conversion in the index expression is allocation-free
// on a hit; only genuinely new names (bounded by maxInterned) allocate.
func (b *Batch) internDevice(raw []byte) string {
	if s, ok := b.intern[string(raw)]; ok {
		return s
	}
	s := string(raw)
	if b.intern == nil {
		b.intern = make(map[string]string, 64)
	}
	if len(b.intern) < maxInterned {
		b.intern[s] = s
	}
	return s
}

// AppendPayload appends the batch record (no frame header) to dst.
func AppendPayload(dst []byte, b *Batch) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(b.Len()))
	for i := range b.Devices {
		dev := b.Devices[i]
		dst = binary.AppendUvarint(dst, uint64(len(dev)))
		dst = append(dst, dev...)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(b.At[i]))
		dst = binary.AppendUvarint(dst, b.Epoch[i])
		dst = binary.AppendUvarint(dst, b.Seq[i])
		span := b.ReportBeacons(i)
		dst = binary.AppendUvarint(dst, uint64(len(span)))
		for _, bc := range span {
			dst = append(dst, bc.ID.UUID[:]...)
			dst = binary.LittleEndian.AppendUint16(dst, bc.ID.Major)
			dst = binary.LittleEndian.AppendUint16(dst, bc.ID.Minor)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(bc.Distance))
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(bc.RSSI))
		}
	}
	return dst
}

// AppendFrame appends one complete frame (header + batch payload).
func AppendFrame(dst []byte, b *Batch) []byte {
	head := len(dst)
	dst = append(dst, Version, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = AppendPayload(dst, b)
	payload := dst[head+frameHeaderLen:]
	binary.LittleEndian.PutUint32(dst[head+1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[head+5:], crc32.Checksum(payload, crcTable))
	return dst
}

// frameAt validates the frame starting data[0] and returns its payload
// and total size. A truncated frame returns ErrShortFrame; a corrupt
// one (wrong version, oversized length, CRC mismatch) a loud error.
func frameAt(data []byte) (payload []byte, size int, err error) {
	if len(data) < frameHeaderLen {
		return nil, 0, ErrShortFrame
	}
	if data[0] != Version {
		return nil, 0, fmt.Errorf("wire: unknown frame version 0x%02x", data[0])
	}
	n := binary.LittleEndian.Uint32(data[1:5])
	if n > MaxFramePayload {
		return nil, 0, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFramePayload)
	}
	size = frameHeaderLen + int(n)
	if len(data) < size {
		return nil, 0, ErrShortFrame
	}
	payload = data[frameHeaderLen:size]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(data[5:9]); got != want {
		return nil, 0, fmt.Errorf("wire: frame checksum mismatch (got %08x want %08x)", got, want)
	}
	return payload, size, nil
}

// Scan walks a stream of concatenated frames, calling fn with each
// validated payload, and returns the length of the valid prefix. The
// contract mirrors the WAL scanner's: a torn final frame (the stream
// ends mid-frame) is not an error — valid stops before it; corruption
// inside the stream (bad version, oversized length, checksum mismatch)
// is an error with valid marking the last good boundary. fn errors
// abort the scan and are returned verbatim.
func Scan(data []byte, fn func(payload []byte) error) (valid int, err error) {
	for valid < len(data) {
		payload, size, err := frameAt(data[valid:])
		if err == ErrShortFrame {
			return valid, nil
		}
		if err != nil {
			return valid, err
		}
		if err := fn(payload); err != nil {
			return valid, err
		}
		valid += size
	}
	return valid, nil
}

// DecodePayload decodes one batch record into b (which is Reset
// first). Decoded device names are interned per Batch.
func DecodePayload(payload []byte, b *Batch) error {
	b.Reset()
	r := payloadReader{buf: payload}
	count, err := r.u32()
	if err != nil {
		return err
	}
	// A corrupt count must not drive allocation: every report costs at
	// least minReportWire bytes of payload.
	if uint64(count) > uint64(len(payload))/minReportWire+1 {
		return fmt.Errorf("wire: report count %d exceeds payload", count)
	}
	for i := uint32(0); i < count; i++ {
		dn, err := r.uvarint()
		if err != nil {
			return err
		}
		dev, err := r.bytes(dn)
		if err != nil {
			return err
		}
		atBits, err := r.u64()
		if err != nil {
			return err
		}
		epoch, err := r.uvarint()
		if err != nil {
			return err
		}
		seq, err := r.uvarint()
		if err != nil {
			return err
		}
		bn, err := r.uvarint()
		if err != nil {
			return err
		}
		if bn > uint64(len(r.buf))/beaconWire {
			return fmt.Errorf("wire: beacon count %d exceeds payload", bn)
		}
		b.AddReport(b.internDevice(dev), math.Float64frombits(atBits), epoch, seq)
		for k := uint64(0); k < bn; k++ {
			raw, err := r.bytes(beaconWire)
			if err != nil {
				return err
			}
			var bc Beacon
			copy(bc.ID.UUID[:], raw[:16])
			bc.ID.Major = binary.LittleEndian.Uint16(raw[16:18])
			bc.ID.Minor = binary.LittleEndian.Uint16(raw[18:20])
			bc.Distance = math.Float64frombits(binary.LittleEndian.Uint64(raw[20:28]))
			bc.RSSI = math.Float64frombits(binary.LittleEndian.Uint64(raw[28:36]))
			b.AddBeacon(bc)
		}
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after batch record", len(r.buf))
	}
	return nil
}

// DecodeFrame validates and decodes the single frame that must span
// exactly data — the shape HTTP request bodies arrive in.
func DecodeFrame(data []byte, b *Batch) error {
	payload, size, err := frameAt(data)
	if err != nil {
		return err
	}
	if size != len(data) {
		return fmt.Errorf("wire: %d trailing bytes after frame", len(data)-size)
	}
	return DecodePayload(payload, b)
}

// ScanReports walks a batch payload's per-report metadata — device,
// time, stamps — without decoding beacons, and returns the report
// count. This is the gateway's pre-split forward pass: registration
// and fencing need names and times, never beacon contents. The device
// slice is a view into payload, valid only during fn.
func ScanReports(payload []byte, fn func(device []byte, at float64, epoch, seq uint64) error) (int, error) {
	r := payloadReader{buf: payload}
	count, err := r.u32()
	if err != nil {
		return 0, err
	}
	if uint64(count) > uint64(len(payload))/minReportWire+1 {
		return 0, fmt.Errorf("wire: report count %d exceeds payload", count)
	}
	for i := uint32(0); i < count; i++ {
		dn, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		dev, err := r.bytes(dn)
		if err != nil {
			return 0, err
		}
		atBits, err := r.u64()
		if err != nil {
			return 0, err
		}
		epoch, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		seq, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		bn, err := r.uvarint()
		if err != nil {
			return 0, err
		}
		if bn > uint64(len(r.buf))/beaconWire {
			return 0, fmt.Errorf("wire: beacon count %d exceeds payload", bn)
		}
		if _, err := r.bytes(bn * beaconWire); err != nil {
			return 0, err
		}
		if err := fn(dev, math.Float64frombits(atBits), epoch, seq); err != nil {
			return 0, err
		}
	}
	if len(r.buf) != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes after batch record", len(r.buf))
	}
	return int(count), nil
}

// AppendSection appends one pre-split section header (uvarint-length
// shard name) to dst; the caller appends the section's frame next with
// AppendFrame.
func AppendSection(dst []byte, shard string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(shard)))
	return append(dst, shard...)
}

// ScanSections walks a pre-split body — concatenated (shard name,
// frame) sections — calling fn with each shard name, the whole frame
// (forwarded verbatim on the fast path) and its validated payload.
// Unlike Scan, a body that does not parse end to end is an error: an
// upload is all-or-nothing, there is no torn tail to recover.
func ScanSections(data []byte, fn func(shard []byte, frame, payload []byte) error) error {
	off := 0
	for off < len(data) {
		n, sz := binary.Uvarint(data[off:])
		if sz <= 0 || n > uint64(len(data)-off-sz) {
			return fmt.Errorf("wire: bad section header at offset %d", off)
		}
		off += sz
		shard := data[off : off+int(n)]
		off += int(n)
		payload, size, err := frameAt(data[off:])
		if err != nil {
			return err
		}
		if err := fn(shard, data[off:off+size], payload); err != nil {
			return err
		}
		off += size
	}
	return nil
}

// --- pools ------------------------------------------------------------

var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch fetches a pooled Batch, Reset and ready to fill.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.Reset()
	return b
}

// PutBatch returns a Batch to the pool.
func PutBatch(b *Batch) { batchPool.Put(b) }

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// pooledBufMax bounds what returns to the buffer pool, so one giant
// batch does not pin its high-water mark forever.
const pooledBufMax = 1 << 20

// GetBuf fetches a pooled byte buffer (length zero).
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer to the pool unless it grew past the cap.
func PutBuf(b *[]byte) {
	if cap(*b) <= pooledBufMax {
		bufPool.Put(b)
	}
}

// payloadReader is a bounds-checked cursor over one payload.
type payloadReader struct{ buf []byte }

func (r *payloadReader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, ErrShortFrame
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *payloadReader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, ErrShortFrame
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, ErrShortFrame
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *payloadReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.buf)) {
		return nil, ErrShortFrame
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b, nil
}
