// Package overload implements the bounded admission gate the ingest
// servers shed load through. The paper's cooperative crowd never
// overloads its Flask BMS; a hostile fleet — retransmit storms, NAT'd
// whole-batch replays, synchronized retry waves — will. The gate bounds
// the work a server accepts at once: up to MaxInflight ingest calls run
// concurrently, up to MaxQueue more wait their turn, and everything
// beyond that is rejected immediately with an Error carrying a
// Retry-After hint, so a storm sees fast, explicit 429s instead of an
// unbounded queue melting the box (and the shed responses tell clients
// exactly how long to back off).
//
// Both bms.Server and fleet.Gateway embed a Gate, so single servers and
// gateways shed with identical semantics; a nil *Gate admits everything,
// keeping the historical unbounded behaviour for in-process callers
// that want it.
package overload

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"occusim/internal/obs"
)

// Config bounds an admission gate; the zero value disables gating.
type Config struct {
	// MaxInflight is the number of ingest calls allowed to run
	// concurrently. 0 disables the gate entirely (NewGate returns nil).
	MaxInflight int
	// MaxQueue is how many further calls may wait for an inflight slot
	// before the gate starts shedding (default: 2 × MaxInflight).
	MaxQueue int
	// RetryAfter is the backoff hint attached to shed responses
	// (default 1s). HTTP faces surface it as a Retry-After header.
	RetryAfter time.Duration
}

// Error is a shed admission: the server is over capacity and the caller
// should retry after the hinted delay. HTTP handlers map it to
// 429 Too Many Requests with a Retry-After header.
type Error struct {
	// RetryAfter is the suggested backoff before retrying.
	RetryAfter time.Duration
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("overloaded: admission queue full, retry after %v", e.RetryAfter)
}

// IsOverload reports whether err (or anything it wraps) is a shed
// admission, returning the retry hint when it is.
func IsOverload(err error) (retryAfter time.Duration, ok bool) {
	var oe *Error
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}

// Gate is the bounded admission queue. A nil *Gate admits everything —
// callers embed one unconditionally and only construct it when gating
// is configured.
type Gate struct {
	maxInflight int
	maxQueue    int
	retryAfter  time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int
	queued   int

	// lifetime counters, for operators and vacuity checks in tests.
	admitted uint64
	shed     uint64
}

// NewGate builds a gate from cfg; it returns nil (admit everything)
// when MaxInflight is 0 or negative.
func NewGate(cfg Config) *Gate {
	if cfg.MaxInflight <= 0 {
		return nil
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 2 * cfg.MaxInflight
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	g := &Gate{
		maxInflight: cfg.MaxInflight,
		maxQueue:    cfg.MaxQueue,
		retryAfter:  cfg.RetryAfter,
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Acquire admits one ingest call: it returns immediately when an
// inflight slot is free, waits when the queue has room, and sheds with
// an *Error when the queue is full. The returned release must be called
// exactly once when the admitted work finishes. A nil gate admits
// without bookkeeping.
func (g *Gate) Acquire() (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	g.mu.Lock()
	if g.inflight >= g.maxInflight {
		if g.queued >= g.maxQueue {
			g.shed++
			after := g.retryAfter
			g.mu.Unlock()
			return nil, &Error{RetryAfter: after}
		}
		g.queued++
		for g.inflight >= g.maxInflight {
			g.cond.Wait()
		}
		g.queued--
	}
	g.inflight++
	g.admitted++
	g.mu.Unlock()
	return func() {
		g.mu.Lock()
		g.inflight--
		g.mu.Unlock()
		g.cond.Signal()
	}, nil
}

// Load returns the instantaneous (inflight, queued) occupancy; zeros on
// a nil gate.
func (g *Gate) Load() (inflight, queued int) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight, g.queued
}

// Stats returns lifetime (admitted, shed) counts; zeros on a nil gate.
func (g *Gate) Stats() (admitted, shed uint64) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.admitted, g.shed
}

// Instrument registers the gate's occupancy gauges and lifetime
// counters on m under the given subsystem prefix (e.g. "bms_gate").
// The gate already keeps these numbers for Load/Stats, so the series
// are func-backed: the admission hot path is untouched and each scrape
// pays the mutexed read. No-op on a nil gate or registry.
func (g *Gate) Instrument(m *obs.Metrics, subsystem string) {
	if g == nil || m == nil {
		return
	}
	m.GaugeFunc(subsystem+"_inflight", "admitted ingest calls currently running", func() float64 {
		inflight, _ := g.Load()
		return float64(inflight)
	})
	m.GaugeFunc(subsystem+"_queue_depth", "ingest calls waiting for an inflight slot", func() float64 {
		_, queued := g.Load()
		return float64(queued)
	})
	m.CounterFunc(subsystem+"_admitted_total", "lifetime admitted ingest calls", func() float64 {
		admitted, _ := g.Stats()
		return float64(admitted)
	})
	m.CounterFunc(subsystem+"_shed_total", "lifetime admissions shed with a retry hint", func() float64 {
		_, shed := g.Stats()
		return float64(shed)
	})
}
