package overload

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	for i := 0; i < 100; i++ {
		release, err := g.Acquire()
		if err != nil {
			t.Fatalf("nil gate shed: %v", err)
		}
		release()
	}
	if a, s := g.Stats(); a != 0 || s != 0 {
		t.Fatalf("nil gate stats = (%d, %d), want zeros", a, s)
	}
}

func TestZeroConfigDisablesGate(t *testing.T) {
	if g := NewGate(Config{}); g != nil {
		t.Fatalf("NewGate(zero) = %v, want nil", g)
	}
	if g := NewGate(Config{MaxInflight: -3}); g != nil {
		t.Fatalf("NewGate(negative) = %v, want nil", g)
	}
}

func TestGateShedsBeyondQueue(t *testing.T) {
	g := NewGate(Config{MaxInflight: 2, MaxQueue: 1, RetryAfter: 250 * time.Millisecond})

	// Fill both inflight slots.
	r1, err := g.Acquire()
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	r2, err := g.Acquire()
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}

	// Third acquire queues; wait until it is registered as queued.
	queuedDone := make(chan struct{})
	go func() {
		r3, err := g.Acquire()
		if err != nil {
			t.Errorf("queued acquire shed: %v", err)
		} else {
			r3()
		}
		close(queuedDone)
	}()
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.queued == 1
	})

	// Fourth acquire finds the queue full and sheds immediately.
	_, err = g.Acquire()
	var oe *Error
	if !errors.As(err, &oe) {
		t.Fatalf("over-queue acquire err = %v, want *Error", err)
	}
	if oe.RetryAfter != 250*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 250ms", oe.RetryAfter)
	}
	if after, ok := IsOverload(err); !ok || after != 250*time.Millisecond {
		t.Fatalf("IsOverload = (%v, %v), want (250ms, true)", after, ok)
	}

	// Releasing an inflight slot lets the queued caller through.
	r1()
	<-queuedDone
	r2()

	if _, shed := g.Stats(); shed != 1 {
		t.Fatalf("shed count = %d, want 1", shed)
	}
	if admitted, _ := g.Stats(); admitted != 3 {
		t.Fatalf("admitted count = %d, want 3", admitted)
	}
}

func TestGateDefaults(t *testing.T) {
	g := NewGate(Config{MaxInflight: 4})
	if g.maxQueue != 8 {
		t.Fatalf("default MaxQueue = %d, want 8", g.maxQueue)
	}
	if g.retryAfter != time.Second {
		t.Fatalf("default RetryAfter = %v, want 1s", g.retryAfter)
	}
}

// TestGateConcurrentChurn hammers the gate from many goroutines and
// checks the inflight bound is never exceeded and all admitted work
// releases cleanly (run under -race in CI).
func TestGateConcurrentChurn(t *testing.T) {
	const inflight = 3
	g := NewGate(Config{MaxInflight: inflight, MaxQueue: 4})

	var (
		mu      sync.Mutex
		cur     int
		peak    int
		shedded int
	)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				release, err := g.Acquire()
				if err != nil {
					mu.Lock()
					shedded++
					mu.Unlock()
					continue
				}
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()

				mu.Lock()
				cur--
				mu.Unlock()
				release()
			}
		}()
	}
	wg.Wait()

	if peak > inflight {
		t.Fatalf("observed %d concurrent admissions, bound is %d", peak, inflight)
	}
	admitted, shed := g.Stats()
	if int(shed) != shedded {
		t.Fatalf("gate shed count %d != observed %d", shed, shedded)
	}
	if admitted+shed != 64*50 {
		t.Fatalf("admitted %d + shed %d != %d total attempts", admitted, shed, 64*50)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inflight != 0 || g.queued != 0 {
		t.Fatalf("gate not drained: inflight=%d queued=%d", g.inflight, g.queued)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
