// Package ble models the Bluetooth Low Energy advertising link between
// the beacon boards and the phones: periodic advertising events with the
// spec's pseudo-random advDelay jitter, per-packet channel draws from the
// radio model, listener duty cycling (a scanner hears only a fraction of
// the packets physically present), and an ALOHA-style collision model for
// co-located advertisers.
//
// The package deliberately stops below the scanning semantics of any
// particular OS: it delivers raw advertisement receptions. The scanner
// package layers Android's one-report-per-cycle behaviour and iOS's
// every-packet behaviour on top.
package ble

import (
	"fmt"
	"math"
	"time"

	"occusim/internal/geom"
	"occusim/internal/mobility"
	"occusim/internal/radio"
	"occusim/internal/rng"
	"occusim/internal/sim"
)

// AdvAirtime is the on-air duration of one iBeacon advertising PDU
// (preamble + access address + 30-byte payload + CRC at 1 Mb/s ≈ 376 µs,
// rounded up).
const AdvAirtime = 400 * time.Microsecond

// MaxAdvDelay is the specification's pseudo-random per-event advertising
// delay bound (0–10 ms).
const MaxAdvDelay = 10 * time.Millisecond

// Advertiser is one beacon transmitter.
type Advertiser struct {
	// Name identifies the advertiser in reports; typically the beacon ID
	// string.
	Name string
	// Payload is the advertising PDU payload (an encoded iBeacon packet).
	Payload []byte
	// LinkID feeds the per-link shadowing field of the radio model;
	// typically ibeacon.BeaconID.Hash64().
	LinkID uint64
	// PowerAt1mDBm is the true received power 1 m from the antenna, the
	// reference the channel model propagates from. After calibration this
	// is close to the advertised measured-power field, but the two are
	// independent knobs.
	PowerAt1mDBm float64
	// Interval is the advertising interval. The paper's transmitter
	// advertises ~30 times per second (≈33 ms).
	Interval time.Duration
	// Pos is the mounting position (beacon boards do not move).
	Pos geom.Point
}

// Validate reports the first invalid field, or nil.
func (a *Advertiser) Validate() error {
	switch {
	case len(a.Payload) == 0:
		return fmt.Errorf("ble: advertiser %q has empty payload", a.Name)
	case a.Interval <= 0:
		return fmt.Errorf("ble: advertiser %q has non-positive interval", a.Name)
	}
	return nil
}

// Reception is one successfully decoded advertisement at a listener.
type Reception struct {
	// At is the simulated reception time.
	At time.Duration
	// From names the advertiser.
	From string
	// Payload is the advertising payload as transmitted.
	Payload []byte
	// RSSI is the received signal strength indicator in dBm, including
	// the listener's device offset and measurement noise.
	RSSI float64
}

// Listener is one receiving radio attached to the world.
type Listener struct {
	// Name identifies the listener.
	Name string
	// Mobility yields the listener position over time.
	Mobility mobility.Model
	// OffsetDB is the handset's systematic RSSI offset (device.Profile).
	OffsetDB float64
	// NoiseSigmaDB is per-sample measurement noise added on top of the
	// channel.
	NoiseSigmaDB float64
	// CaptureProb is the probability that the listener's radio is tuned
	// and listening when a packet arrives (channel rotation × scan duty
	// cycle). 0 means "use 1.0".
	CaptureProb float64
	// Handler receives every decoded advertisement. Handlers run inside
	// the world's batched-delivery flow, where the engine clock may lag
	// Reception.At; they must not schedule engine events (react from a
	// ticker or cycle callback instead — see sim.Flow).
	Handler func(Reception)

	src *rng.Source
	idx int
	// capProb is captureProb() resolved once at attach time; lnMissProb
	// is ln(1−capProb), the geometric skip-sampling scale.
	capProb    float64
	lnMissProb float64
	// gapCDF[k-1] = P(gap ≤ k) = 1 − (1−capProb)^k, the geometric
	// capture-gap CDF prefix; gapGuide[j] is the Chen–Asau guide table
	// (the first CDF index whose value exceeds j/gapGuideLen). Gap draws
	// resolve by one guide lookup plus on average about one compare,
	// instead of paying a logarithm per captured packet; only the deep
	// tail past the CDF table falls back to inversion.
	gapCDF   []float64
	gapGuide []uint8
	// staticPos holds the listener's position when its mobility model is
	// mobility.Static, hoisting the per-packet interface call out of the
	// gather loop; nil for genuinely mobile listeners.
	staticPos *geom.Point
	// cullBelowDBm is the mean-RSSI level under which packets to this
	// listener are hopeless (sensitivity minus the fading-tail margin);
	// see radio.(*Channel).CullMarginDB.
	cullBelowDBm float64
}

func (l *Listener) captureProb() float64 {
	if l.CaptureProb == 0 {
		return 1
	}
	return l.CaptureProb
}

// Validate reports the first invalid field, or nil.
func (l *Listener) Validate() error {
	switch {
	case l.Mobility == nil:
		return fmt.Errorf("ble: listener %q has no mobility model", l.Name)
	case l.Handler == nil:
		return fmt.Errorf("ble: listener %q has no handler", l.Name)
	case l.CaptureProb < 0 || l.CaptureProb > 1:
		return fmt.Errorf("ble: listener %q capture probability %v outside [0,1]", l.Name, l.CaptureProb)
	case l.NoiseSigmaDB < 0:
		return fmt.Errorf("ble: listener %q negative noise sigma", l.Name)
	}
	return nil
}

// World wires advertisers, listeners, the radio channel and the event
// engine together.
//
// Advertising is delivered in batches: instead of one simulation-heap
// event per advertisement (one every ~28 ms of simulated time per beacon,
// with a closure allocation and heap churn each), the world registers a
// single sim.Flow. Whenever the engine is about to advance the clock past
// a gap between discrete events, the flow enumerates the deterministic
// advertisement times of every advertiser inside that window and samples
// receptions in a tight loop. Per-packet randomness comes from a stream
// derived from (listener, advertiser, packet index), so outcomes do not
// depend on how simulated time happens to be partitioned into windows.
type World struct {
	engine      *sim.Engine
	channel     *radio.Channel
	advertisers []*Advertiser
	advStates   []advState
	// listeners is indexed by Listener.idx; removed listeners leave a
	// nil hole so the indices (and hence the per-packet randomness tags)
	// of the remaining listeners never shift.
	listeners []*Listener
	src       *rng.Source

	// meanCache memoises the deterministic per-(link, position) part of
	// the channel response; the world is single-goroutine, so one cache
	// serves every link.
	meanCache *radio.MeanCache
	// slowGen caches the channel's slow-fade generator (immutable after
	// construction).
	slowGen radio.SlowFade

	// collisionProb[i] is the per-packet probability that advertiser i's
	// packet overlaps another advertiser's packet on the same channel at
	// a listener (slotted-ALOHA approximation: Σ over other advertisers
	// of 2·airtime/interval, divided by 3 channels).
	collisionProb []float64

	// links[listener][advertiser] holds the per-link hot-path state:
	// the Ornstein–Uhlenbeck fading value and the last receiver position
	// with its memoised channel environment. Direct slab indexing here
	// replaces a per-packet map lookup.
	links [][]linkState

	// pktBuf is the reused per-window packet-time buffer of
	// deliverWindow.
	pktBuf []time.Duration

	// batch is the reused struct-of-arrays scratch of the vectorized
	// delivery loop: one (listener, advertiser) link's captured packets
	// of the current window, processed stage by stage (draw fill, fading
	// chain, decode) in tight loops over the columns.
	batch linkBatch

	// cullEnabled gates hopeless-link culling: packets whose memoised
	// mean RSSI sits below the listener's cull threshold skip the fading
	// draws and the decode test entirely. Enabled by default; tests
	// disable it to compare against the exhaustive path.
	cullEnabled bool
	// culled counts packets skipped by the cull, for benchmarks and the
	// culling regression tests.
	culled uint64
}

// advState tracks one advertiser's position in its advertising train.
type advState struct {
	// nextAt is the time of the next advertising event.
	nextAt time.Duration
	// pkt counts advertising events from zero; it tags the per-packet
	// randomness streams.
	pkt uint64
	// src draws the spec's pseudo-random per-event advDelay jitter.
	src *rng.Source
}

// linkBatch is the struct-of-arrays buffer of one link's captured
// packets within a delivery window. Columns are indexed per packet;
// uni and nrm are strided (uniPerPkt / nrmPerPkt draws per packet).
type linkBatch struct {
	at   []time.Duration
	mean []float64 // memoised link mean: tx power + environment
	tag  []uint64  // per-packet stream derivation tag
	uni  []float64 // uniforms: collision test, decode test
	nrm  []float64 // normals: Rician I/Q, OU innovation, noise
	rssi []float64
}

// uniPerPkt and nrmPerPkt are the per-packet draw widths of the batch:
// two uniforms (collision, decode) and four standard normals (Rician
// quadratures, OU innovation, measurement noise).
const (
	uniPerPkt = 2
	nrmPerPkt = 4
)

// reset clears the gather columns for the next link, keeping capacity.
func (b *linkBatch) reset() {
	b.at = b.at[:0]
	b.mean = b.mean[:0]
	b.tag = b.tag[:0]
}

// sized returns buf resized to n entries, reallocating only on growth.
func sized(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// linkState is the per-(listener, advertiser) hot-path state.
type linkState struct {
	// fade is the link's Ornstein–Uhlenbeck slow-fading state.
	fadeV    float64
	fadeLast time.Duration
	fadeInit bool
	// lastRx memoises the channel environment for the most recent
	// receiver position: a dwelling or static listener pays the channel
	// model once per position instead of once per packet.
	lastRx geom.Point
	env    float64
	envOK  bool
	// capNext is the next packet index of this advertiser that passes
	// the listener's capture test, advanced by geometric gap draws
	// (capGap tags them); see the capture notes on deliverWindow.
	capNext uint64
	capGap  uint64
	capInit bool
}

// NewWorld creates a world over the given channel. seed drives all link
// randomness (jitter, fading draws, capture, noise).
func NewWorld(engine *sim.Engine, channel *radio.Channel, seed uint64) *World {
	w := &World{
		engine:      engine,
		channel:     channel,
		src:         rng.New(seed),
		meanCache:   radio.NewMeanCache(),
		slowGen:     channel.SlowFade(),
		cullEnabled: true,
	}
	engine.AddFlow(w.deliverWindow)
	return w
}

// SetCulling enables or disables hopeless-link culling. Culling is on by
// default; the regression tests turn it off to compare the culled run
// against the exhaustive one.
func (w *World) SetCulling(enabled bool) { w.cullEnabled = enabled }

// Culled returns the number of packets skipped by hopeless-link culling.
func (w *World) Culled() uint64 { return w.culled }

// Engine returns the underlying event engine.
func (w *World) Engine() *sim.Engine { return w.engine }

// AddAdvertiser registers a beacon transmitter; its advertising train
// starts at a small random phase.
func (w *World) AddAdvertiser(a *Advertiser) error {
	if err := a.Validate(); err != nil {
		return err
	}
	w.advertisers = append(w.advertisers, a)
	w.recomputeCollisions()
	advSrc := w.src.Split(uint64(len(w.advertisers)))
	// Random initial phase avoids artificial synchronisation between
	// transmitters.
	phase := time.Duration(advSrc.Uniform(0, float64(a.Interval)))
	w.advStates = append(w.advStates, advState{
		nextAt: w.engine.Now() + phase,
		src:    advSrc,
	})
	for i := range w.links {
		w.links[i] = append(w.links[i], linkState{})
	}
	return nil
}

// AddListener registers a receiver.
func (w *World) AddListener(l *Listener) error {
	if err := l.Validate(); err != nil {
		return err
	}
	l.src = w.src.Split(0x10000 + uint64(len(w.listeners)))
	l.idx = len(w.listeners)
	l.capProb = l.captureProb()
	if l.capProb < 1 {
		l.lnMissProb = math.Log(1 - l.capProb)
		l.gapCDF = make([]float64, gapTableLen)
		tail := 1.0
		for k := range l.gapCDF {
			tail *= 1 - l.capProb
			l.gapCDF[k] = 1 - tail
		}
		l.gapGuide = make([]uint8, gapGuideLen)
		idx := 0
		for j := range l.gapGuide {
			for idx < gapTableLen && l.gapCDF[idx] <= float64(j)/gapGuideLen {
				idx++
			}
			l.gapGuide[j] = uint8(idx)
		}
	}
	l.cullBelowDBm = w.channel.Params().SensitivityDBm - w.channel.CullMarginDB(l.NoiseSigmaDB)
	if s, ok := l.Mobility.(mobility.Static); ok {
		p := s.P
		l.staticPos = &p
	}
	w.listeners = append(w.listeners, l)
	w.links = append(w.links, make([]linkState, len(w.advertisers)))
	return nil
}

// RemoveListener detaches a previously added receiver: the handset has
// left the deployment and its packets need not be sampled any more.
// Removal leaves other listeners' randomness streams untouched (per-
// packet draws are derived from each listener's own stream and index).
// Removing a listener that is not attached is a no-op.
func (w *World) RemoveListener(l *Listener) {
	if l == nil || l.idx >= len(w.listeners) || w.listeners[l.idx] != l {
		return
	}
	w.listeners[l.idx] = nil
}

func (w *World) recomputeCollisions() {
	// One aggregate pass: each advertiser's exposure is the total
	// airtime-fraction sum minus its own contribution.
	w.collisionProb = make([]float64, len(w.advertisers))
	var total float64
	for _, a := range w.advertisers {
		total += 2 * AdvAirtime.Seconds() / a.Interval.Seconds() / 3
	}
	for i, a := range w.advertisers {
		p := total - 2*AdvAirtime.Seconds()/a.Interval.Seconds()/3
		if p > 1 {
			p = 1
		}
		w.collisionProb[i] = p
	}
}

// deliverWindow is the world's sim.Flow: it walks every advertiser's
// train across the window (from, to] and samples receptions for each
// listener. Windows partition simulated time exactly, and scan-cycle
// boundaries are themselves engine events, so every reception is
// delivered before any event with an equal or later timestamp runs — the
// same observable order as one heap event per advertisement.
// Sampling runs in two passes per advertiser: the packet times of the
// window are enumerated once into a reused buffer (the jitter stream
// depends only on the advertiser), then each listener processes the
// window through the struct-of-arrays link batch (gatherLink /
// sampleLink). The capture test is geometric skip-ahead sampling: the
// packets a duty-cycled radio captures form an iid Bernoulli(p) process
// over the advertiser's packet indices, so instead of hashing a
// decision per packet each link stores the index of its next capture
// and draws the geometric gap to the following one only when it fires —
// a duty-cycled listener costs O(captured packets), not O(packets on
// air). Gap draws are tagged by their ordinal, so the sequence of
// capture indices is a pure function of the seed: independent of window
// partitioning and of other listeners, exactly like the per-packet
// streams. Within a window receptions are enumerated per listener
// (cross-listener order is unobservable: handlers only accumulate
// per-listener state and react at engine events).
func (w *World) deliverWindow(from, to time.Duration) {
	listeners := w.listeners
	for idx := range w.advertisers {
		a := w.advertisers[idx]
		st := &w.advStates[idx]
		if st.nextAt > to {
			continue
		}
		buf := w.pktBuf[:0]
		firstPkt := st.pkt
		for st.nextAt <= to {
			buf = append(buf, st.nextAt)
			st.nextAt += a.Interval + time.Duration(st.src.Uniform(0, float64(MaxAdvDelay)))
			st.pkt++
		}
		w.pktBuf = buf
		for _, l := range listeners {
			if l == nil {
				continue
			}
			ls := &w.links[l.idx][idx]
			w.gatherLink(buf, firstPkt, idx, a, l, ls)
			if len(w.batch.at) > 0 {
				w.sampleLink(idx, a, l, ls)
			}
		}
	}
}

// gatherLink fills the batch's gather columns with the link's captured,
// non-hopeless packets of the window: reception time, derivation tag
// and the memoised deterministic link mean. No stream state is consumed
// here — capture gaps come from pure ordinal hashes and the mean is
// deterministic — so culling a packet cannot shift any other packet's
// randomness.
func (w *World) gatherLink(buf []time.Duration, firstPkt uint64, advIdx int, a *Advertiser, l *Listener, ls *linkState) {
	w.batch.reset()
	if l.capProb >= 1 {
		for i, at := range buf {
			w.gatherPkt(at, advIdx, a, l, ls, firstPkt+uint64(i))
		}
		return
	}
	if !ls.capInit {
		ls.capInit = true
		// First capture: the success index offset from here is
		// geometric-minus-one.
		ls.capNext = firstPkt + w.captureGap(l, advIdx, ls) - 1
	}
	n := uint64(len(buf))
	for ls.capNext-firstPkt < n {
		w.gatherPkt(buf[ls.capNext-firstPkt], advIdx, a, l, ls, ls.capNext)
		ls.capNext += w.captureGap(l, advIdx, ls)
	}
}

// gatherPkt appends one captured packet to the batch unless the link's
// memoised mean sits below the listener's cull threshold — then the
// packet is hopeless (even the upper tail of the combined fading cannot
// lift it to a plausible decode) and the whole sampling chain is
// skipped. For links that never cull, batch contents are independent of
// the cull setting, so receptions are bit-identical to the exhaustive
// path.
func (w *World) gatherPkt(at time.Duration, advIdx int, a *Advertiser, l *Listener, ls *linkState, pkt uint64) {
	var rxPos geom.Point
	if l.staticPos != nil {
		rxPos = *l.staticPos
	} else {
		rxPos = l.Mobility.Position(at)
	}
	if !ls.envOK || rxPos != ls.lastRx {
		ls.env = w.channel.EnvironmentDB(w.meanCache, a.LinkID, a.Pos, rxPos)
		ls.lastRx = rxPos
		ls.envOK = true
	}
	mean := a.PowerAt1mDBm + ls.env
	if w.cullEnabled && mean < l.cullBelowDBm {
		w.culled++
		return
	}
	b := &w.batch
	b.at = append(b.at, at)
	b.mean = append(b.mean, mean)
	b.tag = append(b.tag, pktTag(advIdx, pkt))
}

// sampleLink runs the gathered packets of one link through the fading
// chain in stages over the batch columns:
//
//  1. draw fill — derive each packet's stream from its tag and bulk-fill
//     its uniforms and ziggurat normals,
//  2. fading chain — Rician fast fade from the packet quadratures, the
//     OU slow-fade recurrence stepped packet to packet, device offset
//     and measurement noise,
//  3. decode — collision test, then the lazily evaluated logistic
//     decision, invoking the handler in packet order.
//
// All randomness is a pure function of the seed and each packet's
// (listener, advertiser, packet index) identity, so outcomes are
// independent of window partitioning. The OU state advances at every
// captured packet — including collided ones — which keeps stage 2 a
// straight-line loop; its stationary init uses the first packet's
// innovation slot, the same N(0, σ²) law as a dedicated draw.
func (w *World) sampleLink(advIdx int, a *Advertiser, l *Listener, ls *linkState) {
	b := &w.batch
	n := len(b.at)
	b.uni = sized(b.uni, uniPerPkt*n)
	b.nrm = sized(b.nrm, nrmPerPkt*n)
	b.rssi = sized(b.rssi, n)

	var ps rng.Source
	for k := 0; k < n; k++ {
		l.src.Derive(b.tag[k], &ps)
		ps.FillFloat64(b.uni[uniPerPkt*k : uniPerPkt*k+uniPerPkt])
		ps.FillStdNormal(b.nrm[nrmPerPkt*k : nrmPerPkt*k+nrmPerPkt])
	}

	ch := w.channel
	gen := w.slowGen
	bias := l.OffsetDB
	noise := l.NoiseSigmaDB
	for k := 0; k < n; k++ {
		nrm := b.nrm[nrmPerPkt*k : nrmPerPkt*k+nrmPerPkt]
		rssi := b.mean[k] + ch.RicianFadeDB(nrm[0], nrm[1])
		if gen.SigmaDB != 0 {
			if !ls.fadeInit {
				ls.fadeV = gen.SigmaDB * nrm[2]
				ls.fadeInit = true
			} else {
				ls.fadeV = gen.Step(ls.fadeV, (b.at[k] - ls.fadeLast).Seconds(), nrm[2])
			}
			ls.fadeLast = b.at[k]
			rssi += ls.fadeV
		}
		b.rssi[k] = rssi + bias + noise*nrm[3]
	}

	collP := w.collisionProb[advIdx]
	for k := 0; k < n; k++ {
		// Did another transmitter collide on the same channel?
		if b.uni[uniPerPkt*k] < collP {
			continue
		}
		// Sensitivity: can the radio decode at this level?
		if !ch.DecideReceived(b.rssi[k]-bias, b.uni[uniPerPkt*k+1]) {
			continue
		}
		l.Handler(Reception{At: b.at[k], From: a.Name, Payload: a.Payload, RSSI: b.rssi[k]})
	}
}

// gapTableLen is the length of the precomputed capture-gap CDF and
// gapGuideLen the resolution of its guide table. At the Android duty
// cycle (p = 0.12) the CDF covers all but ~3·10⁻⁴ of the gap mass;
// lower capture probabilities fall back to inversion more often but
// remain exact.
const (
	gapTableLen = 64
	gapGuideLen = 256
)

// captureGap draws the geometric gap (≥ 1) to the link's next captured
// packet: the guide-table equivalent of inversion ceil(ln(1−U)/ln(1−p)),
// paying an index and a compare or two instead of a logarithm. The
// uniform comes from a pure hash of the gap ordinal, so no stream state
// lives in the link.
func (w *World) captureGap(l *Listener, advIdx int, ls *linkState) uint64 {
	u := l.src.Hash01(capTag(advIdx, ls.capGap))
	ls.capGap++
	for k := int(l.gapGuide[int(u*gapGuideLen)]); k < gapTableLen; k++ {
		if u < l.gapCDF[k] {
			return uint64(k + 1)
		}
	}
	// Deep tail: inversion over the remaining mass.
	gap := math.Ceil(math.Log1p(-u) / l.lnMissProb)
	if gap < gapTableLen+1 {
		// Floating-point disagreement at the table boundary resolves in
		// favour of the table.
		return gapTableLen + 1
	}
	return uint64(gap)
}

// capTag composes the derivation tag of one (advertiser, gap ordinal)
// pair, in a space disjoint from pktTag's.
func capTag(advIdx int, gap uint64) uint64 {
	return 1<<63 | uint64(advIdx+1)<<40 + gap
}

// pktTag composes the derivation tag of one (advertiser, packet) pair.
// Packet indices stay far below 2⁴⁰ for any plausible simulation length,
// so tags never collide across advertisers.
func pktTag(advIdx int, pkt uint64) uint64 {
	return uint64(advIdx+1)<<40 + pkt
}

// Run advances the simulation until the given duration of simulated time
// has elapsed.
func (w *World) Run(duration time.Duration) {
	w.engine.RunUntil(w.engine.Now() + duration)
}
