// Package ble models the Bluetooth Low Energy advertising link between
// the beacon boards and the phones: periodic advertising events with the
// spec's pseudo-random advDelay jitter, per-packet channel draws from the
// radio model, listener duty cycling (a scanner hears only a fraction of
// the packets physically present), and an ALOHA-style collision model for
// co-located advertisers.
//
// The package deliberately stops below the scanning semantics of any
// particular OS: it delivers raw advertisement receptions. The scanner
// package layers Android's one-report-per-cycle behaviour and iOS's
// every-packet behaviour on top.
package ble

import (
	"fmt"
	"time"

	"occusim/internal/geom"
	"occusim/internal/mobility"
	"occusim/internal/radio"
	"occusim/internal/rng"
	"occusim/internal/sim"
)

// AdvAirtime is the on-air duration of one iBeacon advertising PDU
// (preamble + access address + 30-byte payload + CRC at 1 Mb/s ≈ 376 µs,
// rounded up).
const AdvAirtime = 400 * time.Microsecond

// MaxAdvDelay is the specification's pseudo-random per-event advertising
// delay bound (0–10 ms).
const MaxAdvDelay = 10 * time.Millisecond

// Advertiser is one beacon transmitter.
type Advertiser struct {
	// Name identifies the advertiser in reports; typically the beacon ID
	// string.
	Name string
	// Payload is the advertising PDU payload (an encoded iBeacon packet).
	Payload []byte
	// LinkID feeds the per-link shadowing field of the radio model;
	// typically ibeacon.BeaconID.Hash64().
	LinkID uint64
	// PowerAt1mDBm is the true received power 1 m from the antenna, the
	// reference the channel model propagates from. After calibration this
	// is close to the advertised measured-power field, but the two are
	// independent knobs.
	PowerAt1mDBm float64
	// Interval is the advertising interval. The paper's transmitter
	// advertises ~30 times per second (≈33 ms).
	Interval time.Duration
	// Pos is the mounting position (beacon boards do not move).
	Pos geom.Point
}

// Validate reports the first invalid field, or nil.
func (a *Advertiser) Validate() error {
	switch {
	case len(a.Payload) == 0:
		return fmt.Errorf("ble: advertiser %q has empty payload", a.Name)
	case a.Interval <= 0:
		return fmt.Errorf("ble: advertiser %q has non-positive interval", a.Name)
	}
	return nil
}

// Reception is one successfully decoded advertisement at a listener.
type Reception struct {
	// At is the simulated reception time.
	At time.Duration
	// From names the advertiser.
	From string
	// Payload is the advertising payload as transmitted.
	Payload []byte
	// RSSI is the received signal strength indicator in dBm, including
	// the listener's device offset and measurement noise.
	RSSI float64
}

// Listener is one receiving radio attached to the world.
type Listener struct {
	// Name identifies the listener.
	Name string
	// Mobility yields the listener position over time.
	Mobility mobility.Model
	// OffsetDB is the handset's systematic RSSI offset (device.Profile).
	OffsetDB float64
	// NoiseSigmaDB is per-sample measurement noise added on top of the
	// channel.
	NoiseSigmaDB float64
	// CaptureProb is the probability that the listener's radio is tuned
	// and listening when a packet arrives (channel rotation × scan duty
	// cycle). 0 means "use 1.0".
	CaptureProb float64
	// Handler receives every decoded advertisement.
	Handler func(Reception)

	src *rng.Source
	idx int
}

func (l *Listener) captureProb() float64 {
	if l.CaptureProb == 0 {
		return 1
	}
	return l.CaptureProb
}

// Validate reports the first invalid field, or nil.
func (l *Listener) Validate() error {
	switch {
	case l.Mobility == nil:
		return fmt.Errorf("ble: listener %q has no mobility model", l.Name)
	case l.Handler == nil:
		return fmt.Errorf("ble: listener %q has no handler", l.Name)
	case l.CaptureProb < 0 || l.CaptureProb > 1:
		return fmt.Errorf("ble: listener %q capture probability %v outside [0,1]", l.Name, l.CaptureProb)
	case l.NoiseSigmaDB < 0:
		return fmt.Errorf("ble: listener %q negative noise sigma", l.Name)
	}
	return nil
}

// World wires advertisers, listeners, the radio channel and the event
// engine together.
type World struct {
	engine      *sim.Engine
	channel     *radio.Channel
	advertisers []*Advertiser
	listeners   []*Listener
	src         *rng.Source

	// collisionProb[i] is the per-packet probability that advertiser i's
	// packet overlaps another advertiser's packet on the same channel at
	// a listener (slotted-ALOHA approximation: Σ over other advertisers
	// of 2·airtime/interval, divided by 3 channels).
	collisionProb []float64

	// slowFade holds the per-link Ornstein–Uhlenbeck fading state,
	// keyed by (listener, advertiser).
	slowFade map[linkKey]*fadeState
}

type linkKey struct {
	listener, advertiser int
}

type fadeState struct {
	v    float64
	last time.Duration
	init bool
}

// NewWorld creates a world over the given channel. seed drives all link
// randomness (jitter, fading draws, capture, noise).
func NewWorld(engine *sim.Engine, channel *radio.Channel, seed uint64) *World {
	return &World{
		engine:   engine,
		channel:  channel,
		src:      rng.New(seed),
		slowFade: map[linkKey]*fadeState{},
	}
}

// Engine returns the underlying event engine.
func (w *World) Engine() *sim.Engine { return w.engine }

// AddAdvertiser registers a beacon transmitter and schedules its
// advertising train starting at a small random phase.
func (w *World) AddAdvertiser(a *Advertiser) error {
	if err := a.Validate(); err != nil {
		return err
	}
	w.advertisers = append(w.advertisers, a)
	w.recomputeCollisions()
	advSrc := w.src.Split(uint64(len(w.advertisers)))
	// Random initial phase avoids artificial synchronisation between
	// transmitters.
	phase := time.Duration(advSrc.Uniform(0, float64(a.Interval)))
	idx := len(w.advertisers) - 1
	w.engine.Schedule(phase, func(e *sim.Engine) { w.advertise(e, idx, advSrc) })
	return nil
}

// AddListener registers a receiver.
func (w *World) AddListener(l *Listener) error {
	if err := l.Validate(); err != nil {
		return err
	}
	l.src = w.src.Split(0x10000 + uint64(len(w.listeners)))
	l.idx = len(w.listeners)
	w.listeners = append(w.listeners, l)
	return nil
}

func (w *World) recomputeCollisions() {
	w.collisionProb = make([]float64, len(w.advertisers))
	for i, a := range w.advertisers {
		var p float64
		for j, b := range w.advertisers {
			if i == j {
				continue
			}
			// A collision happens when the other transmitter starts
			// within ±airtime of ours and picked the same channel.
			p += 2 * AdvAirtime.Seconds() / b.Interval.Seconds() / 3
		}
		_ = a
		if p > 1 {
			p = 1
		}
		w.collisionProb[i] = p
	}
}

// advertise emits one advertising event for advertiser idx and
// reschedules the next one.
func (w *World) advertise(e *sim.Engine, idx int, advSrc *rng.Source) {
	a := w.advertisers[idx]
	now := e.Now()
	for _, l := range w.listeners {
		w.deliver(now, idx, a, l)
	}
	next := a.Interval + time.Duration(advSrc.Uniform(0, float64(MaxAdvDelay)))
	e.Schedule(next, func(e *sim.Engine) { w.advertise(e, idx, advSrc) })
}

// deliver decides whether listener l decodes this advertisement and
// invokes its handler if so.
func (w *World) deliver(now time.Duration, advIdx int, a *Advertiser, l *Listener) {
	// Is the radio tuned to the right channel and listening?
	if !l.src.Bool(l.captureProb()) {
		return
	}
	// Did another transmitter collide on the same channel?
	if l.src.Bool(w.collisionProb[advIdx]) {
		return
	}
	rxPos := l.Mobility.Position(now)
	rssi := w.channel.SampleRSSI(a.PowerAt1mDBm, a.LinkID, a.Pos, rxPos, l.src)
	rssi += w.advanceSlowFade(linkKey{l.idx, advIdx}, now, l.src)
	rssi += l.OffsetDB + l.src.Normal(0, l.NoiseSigmaDB)
	// Sensitivity: can the radio decode at this level?
	if !w.channel.Received(rssi-l.OffsetDB, l.src) {
		return
	}
	l.Handler(Reception{At: now, From: a.Name, Payload: a.Payload, RSSI: rssi})
}

// advanceSlowFade steps the link's Ornstein–Uhlenbeck fading state to
// now and returns its current value in dB.
func (w *World) advanceSlowFade(key linkKey, now time.Duration, src *rng.Source) float64 {
	gen := w.channel.SlowFade()
	if gen.SigmaDB == 0 {
		return 0
	}
	st := w.slowFade[key]
	if st == nil {
		st = &fadeState{}
		w.slowFade[key] = st
	}
	if !st.init {
		st.v = gen.Init(src)
		st.init = true
	} else {
		st.v = gen.Next(st.v, (now - st.last).Seconds(), src)
	}
	st.last = now
	return st.v
}

// Run advances the simulation until the given duration of simulated time
// has elapsed.
func (w *World) Run(duration time.Duration) {
	w.engine.RunUntil(w.engine.Now() + duration)
}
