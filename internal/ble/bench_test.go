package ble

import (
	"testing"
	"time"

	"occusim/internal/geom"
	"occusim/internal/mobility"
	"occusim/internal/radio"
	"occusim/internal/sim"
)

// BenchmarkWorldThroughput measures raw link-layer simulation speed:
// six advertisers at 30/s heard by four listeners, per simulated minute.
func BenchmarkWorldThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ch, err := radio.NewChannel(radio.DefaultIndoor(), nil, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		w := NewWorld(sim.NewEngine(), ch, uint64(i))
		received := 0
		for l := 0; l < 4; l++ {
			if err := w.AddListener(&Listener{
				Name:     "l",
				Mobility: mobility.Static{P: geom.Pt(float64(l), 1)},
				Handler:  func(Reception) { received++ },
			}); err != nil {
				b.Fatal(err)
			}
		}
		for a := 0; a < 6; a++ {
			if err := w.AddAdvertiser(newAdvertiser("b", geom.Pt(float64(a), 0), 33*time.Millisecond)); err != nil {
				b.Fatal(err)
			}
		}
		w.Run(time.Minute)
		if received == 0 {
			b.Fatal("no receptions")
		}
		b.ReportMetric(float64(received), "receptions")
	}
}
