package ble

import (
	"testing"
	"time"

	"occusim/internal/geom"
	"occusim/internal/mobility"
	"occusim/internal/radio"
	"occusim/internal/sim"
	"occusim/internal/stats"
)

// collectRSSI runs a static listener for the given duration and returns
// per-second mean RSSI buckets.
func collectRSSI(t *testing.T, params radio.Params, seed uint64, dur time.Duration) []float64 {
	t.Helper()
	ch, err := radio.NewChannel(params, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(sim.NewEngine(), ch, seed)
	type bucket struct {
		sum float64
		n   int
	}
	buckets := map[int]*bucket{}
	err = w.AddListener(&Listener{
		Name:     "probe",
		Mobility: mobility.Static{P: geom.Pt(2, 0)},
		Handler: func(r Reception) {
			b := buckets[int(r.At/time.Second)]
			if b == nil {
				b = &bucket{}
				buckets[int(r.At/time.Second)] = b
			}
			b.sum += r.RSSI
			b.n++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	w.Run(dur)
	out := make([]float64, 0, len(buckets))
	for i := 0; i < int(dur/time.Second); i++ {
		if b := buckets[i]; b != nil && b.n > 0 {
			out = append(out, b.sum/float64(b.n))
		}
	}
	return out
}

func TestSlowFadingMakesSecondsCorrelated(t *testing.T) {
	params := radio.DefaultIndoor()
	params.ShadowSigmaDB = 0 // isolate temporal effects
	withFade := collectRSSI(t, params, 1, 3*time.Minute)

	params.SlowFadeSigmaDB = 0
	without := collectRSSI(t, params, 1, 3*time.Minute)

	// With OU fading the per-second means wander (high lag-1
	// autocorrelation and larger spread); without it the per-second
	// means are nearly constant.
	acWith := stats.Autocorrelation(withFade, 1)
	sdWith := stats.StdDev(withFade)
	sdWithout := stats.StdDev(without)
	if sdWith <= sdWithout*1.5 {
		t.Fatalf("slow fading should widen per-second spread: %v vs %v", sdWith, sdWithout)
	}
	if acWith < 0.3 {
		t.Fatalf("slow fading should correlate consecutive seconds, ac = %v", acWith)
	}
}

func TestSlowFadingDeterministicPerSeed(t *testing.T) {
	params := radio.DefaultIndoor()
	a := collectRSSI(t, params, 42, time.Minute)
	b := collectRSSI(t, params, 42, time.Minute)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bucket %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSlowFadingIndependentPerLink(t *testing.T) {
	// Two advertisers at the same distance: their per-packet RSSI
	// streams should not be identical (independent OU states), even
	// though path loss matches.
	ch, err := radio.NewChannel(radio.DefaultIndoor(), nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(sim.NewEngine(), ch, 7)
	sums := map[string]float64{}
	counts := map[string]int{}
	err = w.AddListener(&Listener{
		Name:     "probe",
		Mobility: mobility.Static{P: geom.Pt(0, 0)},
		Handler: func(r Reception) {
			sums[r.From] += r.RSSI
			counts[r.From]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = w.AddAdvertiser(newAdvertiser("left", geom.Pt(-2, 0), 33*time.Millisecond))
	_ = w.AddAdvertiser(newAdvertiser("right", geom.Pt(2, 0), 33*time.Millisecond))
	w.Run(30 * time.Second)
	if counts["left"] == 0 || counts["right"] == 0 {
		t.Fatal("missing receptions")
	}
	meanL := sums["left"] / float64(counts["left"])
	meanR := sums["right"] / float64(counts["right"])
	if meanL == meanR {
		t.Fatal("independent links produced identical means")
	}
}
