package ble

import (
	"fmt"
	"math"
	"testing"
	"time"

	"occusim/internal/geom"
	"occusim/internal/ibeacon"
	"occusim/internal/mobility"
	"occusim/internal/radio"
	"occusim/internal/rng"
	"occusim/internal/sim"
	"occusim/internal/stats"
)

func testChannel(t *testing.T) *radio.Channel {
	t.Helper()
	p := radio.DefaultIndoor()
	ch, err := radio.NewChannel(p, nil, 77)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func testPayload() []byte {
	p := ibeacon.Packet{
		UUID:          ibeacon.MustUUID("C0FFEE00-BEEF-4A11-8000-000000000001"),
		Major:         1,
		Minor:         1,
		MeasuredPower: -59,
	}
	return p.Marshal()
}

func newAdvertiser(name string, pos geom.Point, interval time.Duration) *Advertiser {
	return &Advertiser{
		Name:         name,
		Payload:      testPayload(),
		LinkID:       1,
		PowerAt1mDBm: -59,
		Interval:     interval,
		Pos:          pos,
	}
}

func TestAdvertiserValidate(t *testing.T) {
	a := newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *a
	bad.Payload = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty payload should fail")
	}
	bad = *a
	bad.Interval = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero interval should fail")
	}
}

func TestListenerValidate(t *testing.T) {
	ok := &Listener{
		Name:     "phone",
		Mobility: mobility.Static{P: geom.Pt(2, 0)},
		Handler:  func(Reception) {},
	}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Listener{
		{Name: "no-mobility", Handler: func(Reception) {}},
		{Name: "no-handler", Mobility: mobility.Static{}},
		{Name: "bad-capture", Mobility: mobility.Static{}, Handler: func(Reception) {}, CaptureProb: 1.5},
		{Name: "bad-noise", Mobility: mobility.Static{}, Handler: func(Reception) {}, NoiseSigmaDB: -1},
	}
	for _, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("listener %q should fail validation", l.Name)
		}
	}
}

func TestAdvertisingRateMatchesInterval(t *testing.T) {
	w := NewWorld(sim.NewEngine(), testChannel(t), 1)
	var count int
	if err := w.AddListener(&Listener{
		Name:     "phone",
		Mobility: mobility.Static{P: geom.Pt(1, 0)},
		Handler:  func(Reception) { count++ },
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	w.Run(10 * time.Second)
	// ~30/s nominal minus the 0-10 ms jitter → ≈ 26.3/s expected; at 1 m
	// nearly every packet is decodable. Accept a generous band.
	if count < 200 || count > 320 {
		t.Fatalf("receptions in 10 s = %d, want ≈ 250-300", count)
	}
}

func TestCaptureProbScalesReceptions(t *testing.T) {
	countWith := func(capture float64) int {
		w := NewWorld(sim.NewEngine(), testChannel(t), 2)
		n := 0
		_ = w.AddListener(&Listener{
			Name:        "phone",
			Mobility:    mobility.Static{P: geom.Pt(1, 0)},
			CaptureProb: capture,
			Handler:     func(Reception) { n++ },
		})
		_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
		w.Run(20 * time.Second)
		return n
	}
	full := countWith(1.0)
	tenth := countWith(0.1)
	ratio := float64(tenth) / float64(full)
	if math.Abs(ratio-0.1) > 0.04 {
		t.Fatalf("capture 0.1 ratio = %v (%d/%d), want ≈ 0.1", ratio, tenth, full)
	}
}

func TestRSSIDropsWithDistance(t *testing.T) {
	collect := func(d float64) []float64 {
		w := NewWorld(sim.NewEngine(), testChannel(t), 3)
		var rssis []float64
		_ = w.AddListener(&Listener{
			Name:     "phone",
			Mobility: mobility.Static{P: geom.Pt(d, 0)},
			Handler:  func(r Reception) { rssis = append(rssis, r.RSSI) },
		})
		_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
		w.Run(10 * time.Second)
		return rssis
	}
	near := stats.Mean(collect(1))
	far := stats.Mean(collect(8))
	if near <= far {
		t.Fatalf("mean RSSI near (%v) should exceed far (%v)", near, far)
	}
	if near > -40 || near < -75 {
		t.Fatalf("mean RSSI at 1 m = %v, want around -59", near)
	}
}

func TestDeviceOffsetShiftsRSSI(t *testing.T) {
	collect := func(offset float64) float64 {
		w := NewWorld(sim.NewEngine(), testChannel(t), 4)
		var rssis []float64
		_ = w.AddListener(&Listener{
			Name:     "phone",
			Mobility: mobility.Static{P: geom.Pt(2, 0)},
			OffsetDB: offset,
			Handler:  func(r Reception) { rssis = append(rssis, r.RSSI) },
		})
		_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
		w.Run(10 * time.Second)
		return stats.Mean(rssis)
	}
	base := collect(0)
	hot := collect(6)
	if diff := hot - base; math.Abs(diff-6) > 1.0 {
		t.Fatalf("offset shift = %v dB, want ≈ 6", diff)
	}
}

func TestFarListenerLosesPackets(t *testing.T) {
	// At extreme range the RSSI falls below sensitivity and most packets
	// are lost.
	w := NewWorld(sim.NewEngine(), testChannel(t), 5)
	near, far := 0, 0
	_ = w.AddListener(&Listener{
		Name:     "near",
		Mobility: mobility.Static{P: geom.Pt(1, 0)},
		Handler:  func(Reception) { near++ },
	})
	_ = w.AddListener(&Listener{
		Name:     "far",
		Mobility: mobility.Static{P: geom.Pt(300, 0)},
		Handler:  func(Reception) { far++ },
	})
	_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
	w.Run(10 * time.Second)
	if far >= near/2 {
		t.Fatalf("far listener received %d packets vs near %d", far, near)
	}
}

func TestMultipleAdvertisersDistinguishedByName(t *testing.T) {
	w := NewWorld(sim.NewEngine(), testChannel(t), 6)
	byName := map[string]int{}
	_ = w.AddListener(&Listener{
		Name:     "phone",
		Mobility: mobility.Static{P: geom.Pt(2, 0)},
		Handler:  func(r Reception) { byName[r.From]++ },
	})
	_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
	_ = w.AddAdvertiser(newAdvertiser("b2", geom.Pt(4, 0), 33*time.Millisecond))
	w.Run(5 * time.Second)
	if byName["b1"] == 0 || byName["b2"] == 0 {
		t.Fatalf("receptions by name = %v", byName)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	run := func() []float64 {
		w := NewWorld(sim.NewEngine(), testChannel(t), 99)
		var rssis []float64
		_ = w.AddListener(&Listener{
			Name:     "phone",
			Mobility: mobility.Static{P: geom.Pt(2, 0)},
			Handler:  func(r Reception) { rssis = append(rssis, r.RSSI) },
		})
		_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
		w.Run(5 * time.Second)
		return rssis
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("RSSI %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestMovingListenerSeesTrend(t *testing.T) {
	// A listener walking away from the transmitter should see decreasing
	// RSSI trend.
	w := NewWorld(sim.NewEngine(), testChannel(t), 7)
	walk, err := mobility.NewPath([]geom.Point{geom.Pt(1, 0), geom.Pt(12, 0)}, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	type sample struct {
		at   time.Duration
		rssi float64
	}
	var samples []sample
	_ = w.AddListener(&Listener{
		Name:     "walker",
		Mobility: walk,
		Handler:  func(r Reception) { samples = append(samples, sample{r.At, r.RSSI}) },
	})
	_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
	w.Run(10 * time.Second)
	if len(samples) < 50 {
		t.Fatalf("too few samples: %d", len(samples))
	}
	var ts, rs []float64
	for _, s := range samples {
		ts = append(ts, s.at.Seconds())
		rs = append(rs, s.rssi)
	}
	slope, _, err := stats.LinearFit(ts, rs)
	if err != nil {
		t.Fatal(err)
	}
	if slope >= 0 {
		t.Fatalf("RSSI slope while walking away = %v, want negative", slope)
	}
}

func TestAddInvalidComponentsFail(t *testing.T) {
	w := NewWorld(sim.NewEngine(), testChannel(t), 8)
	if err := w.AddAdvertiser(&Advertiser{Name: "bad"}); err == nil {
		t.Error("invalid advertiser accepted")
	}
	if err := w.AddListener(&Listener{Name: "bad"}); err == nil {
		t.Error("invalid listener accepted")
	}
}

func TestCollisionProbGrowsWithAdvertisers(t *testing.T) {
	w := NewWorld(sim.NewEngine(), testChannel(t), 9)
	_ = w.AddListener(&Listener{
		Name:     "phone",
		Mobility: mobility.Static{P: geom.Pt(1, 0)},
		Handler:  func(Reception) {},
	})
	for i := 0; i < 5; i++ {
		a := newAdvertiser("b", geom.Pt(0, 0), 33*time.Millisecond)
		a.Name = a.Name + string(rune('0'+i))
		if err := w.AddAdvertiser(a); err != nil {
			t.Fatal(err)
		}
	}
	// With 5 advertisers each at 33 ms interval: p = 4 · 2·0.4/33 / 3 ≈ 3.2%.
	p := w.collisionProb[0]
	if p <= 0 || p > 0.1 {
		t.Fatalf("collision probability = %v, want small positive", p)
	}
	// All advertisers share the same interval → same collision exposure.
	for i, q := range w.collisionProb {
		if math.Abs(q-p) > 1e-12 {
			t.Fatalf("collisionProb[%d] = %v, want %v", i, q, p)
		}
	}
}

func TestRngSplitStability(t *testing.T) {
	// Adding a listener after advertisers must not perturb the
	// advertisers' jitter stream: check reception count is unchanged by
	// listener registration order of an unrelated second listener.
	countFirst := func(addSecond bool) int {
		w := NewWorld(sim.NewEngine(), testChannel(t), 10)
		n := 0
		_ = w.AddListener(&Listener{
			Name:     "phone",
			Mobility: mobility.Static{P: geom.Pt(1, 0)},
			Handler:  func(Reception) { n++ },
		})
		if addSecond {
			_ = w.AddListener(&Listener{
				Name:     "other",
				Mobility: mobility.Static{P: geom.Pt(3, 0)},
				Handler:  func(Reception) {},
			})
		}
		_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
		w.Run(5 * time.Second)
		return n
	}
	if a, b := countFirst(false), countFirst(true); a != b {
		t.Fatalf("first listener's receptions changed when another listener was added: %d vs %d", a, b)
	}
}

func TestRngSource(t *testing.T) {
	// Sanity: each listener gets an independent source after AddListener.
	w := NewWorld(sim.NewEngine(), testChannel(t), 11)
	l1 := &Listener{Name: "a", Mobility: mobility.Static{}, Handler: func(Reception) {}}
	l2 := &Listener{Name: "b", Mobility: mobility.Static{}, Handler: func(Reception) {}}
	_ = w.AddListener(l1)
	_ = w.AddListener(l2)
	if l1.src == nil || l2.src == nil || l1.src == l2.src {
		t.Fatal("listeners must get distinct rng sources")
	}
	_ = rng.New(0) // keep import used meaningfully in case of refactors
}

// TestCaptureGapTableMatchesInversion pins that the guide-table gap
// draw is the same geometric distribution as analytic inversion: for a
// sweep of uniforms the table answer must equal
// ceil(ln(1−u)/ln(1−p)), and the guide must never start past the
// answer.
func TestCaptureGapTableMatchesInversion(t *testing.T) {
	w := NewWorld(sim.NewEngine(), testChannel(t), 77)
	for _, p := range []float64{0.02, 0.12, 0.5, 0.9} {
		l := &Listener{
			Name:        "probe",
			Mobility:    mobility.Static{P: geom.Pt(1, 0)},
			CaptureProb: p,
			Handler:     func(Reception) {},
		}
		if err := w.AddListener(l); err != nil {
			t.Fatal(err)
		}
		src := rng.New(uint64(1000 * p))
		for i := 0; i < 200_000; i++ {
			u := src.Float64()
			want := math.Ceil(math.Log1p(-u) / l.lnMissProb)
			if want < 1 {
				want = 1
			}
			got := uint64(0)
			for k := int(l.gapGuide[int(u*gapGuideLen)]); k < gapTableLen; k++ {
				if u < l.gapCDF[k] {
					got = uint64(k + 1)
					break
				}
			}
			if got == 0 {
				// Tail fallback region: inversion must agree it is past
				// the table.
				if want <= gapTableLen {
					// Floating-point disagreement exactly at the table
					// boundary is tolerated one step either way.
					if float64(gapTableLen)-want > 1 {
						t.Fatalf("p=%v u=%v: table says tail, inversion says %v", p, u, want)
					}
				}
				continue
			}
			if got != uint64(want) {
				t.Fatalf("p=%v u=%v: table gap %d, inversion %v", p, u, got, want)
			}
		}
	}
}

// TestWindowPartitionInvarianceMobileDutyCycled extends the partition
// pin to the fully batched path: several advertisers, a duty-cycled
// walker (geometric skip-ahead + per-packet positions) and a full-
// capture static listener must all see identical per-link reception
// streams however the simulated time is chopped. Within one window
// receptions are enumerated per (advertiser, listener), so only the
// per-link order is observable — the comparison groups accordingly.
func TestWindowPartitionInvarianceMobileDutyCycled(t *testing.T) {
	run := func(step time.Duration) map[string][]Reception {
		w := NewWorld(sim.NewEngine(), testChannel(t), 321)
		recs := map[string][]Reception{}
		walk, err := mobility.NewPath([]geom.Point{
			geom.Pt(0.5, 0), geom.Pt(3, 0), geom.Pt(3, 2),
		}, 1.25)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AddListener(&Listener{
			Name:         "walker",
			Mobility:     walk,
			CaptureProb:  0.12,
			NoiseSigmaDB: 1,
			Handler: func(r Reception) {
				recs["walker/"+r.From] = append(recs["walker/"+r.From], r)
			},
		}); err != nil {
			t.Fatal(err)
		}
		if err := w.AddListener(&Listener{
			Name:     "static",
			Mobility: mobility.Static{P: geom.Pt(2, 1)},
			Handler: func(r Reception) {
				recs["static/"+r.From] = append(recs["static/"+r.From], r)
			},
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("b%d", i)
			if err := w.AddAdvertiser(newAdvertiser(name, geom.Pt(float64(i), 0), 33*time.Millisecond)); err != nil {
				t.Fatal(err)
			}
		}
		// The step divides the duration exactly, so both runs simulate
		// the same span.
		for elapsed := time.Duration(0); elapsed < 12*time.Second; elapsed += step {
			w.Run(step)
		}
		return recs
	}
	oneShot := run(12 * time.Second)
	chopped := run(125 * time.Millisecond)
	if len(oneShot) != 6 {
		t.Fatalf("links heard = %d, want 6", len(oneShot))
	}
	for link, a := range oneShot {
		b := chopped[link]
		if len(a) == 0 {
			t.Fatalf("link %s: no receptions", link)
		}
		if len(a) != len(b) {
			t.Fatalf("link %s: reception counts differ: %d vs %d", link, len(a), len(b))
		}
		for i := range a {
			if a[i].At != b[i].At || a[i].RSSI != b[i].RSSI {
				t.Fatalf("link %s reception %d differs: %+v vs %+v", link, i, a[i], b[i])
			}
		}
	}
}
