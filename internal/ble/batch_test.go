package ble

import (
	"testing"
	"time"

	"occusim/internal/geom"
	"occusim/internal/mobility"
	"occusim/internal/sim"
)

// runRSSIs runs a one-advertiser world for dur, stepping the clock in
// the given increments, and returns the listener's reception stream.
func runRSSIs(t *testing.T, step, dur time.Duration) []Reception {
	t.Helper()
	w := NewWorld(sim.NewEngine(), testChannel(t), 123)
	var recs []Reception
	if err := w.AddListener(&Listener{
		Name:     "phone",
		Mobility: mobility.Static{P: geom.Pt(2, 0)},
		Handler:  func(r Reception) { recs = append(recs, r) },
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	for elapsed := time.Duration(0); elapsed < dur; elapsed += step {
		w.Run(step)
	}
	return recs
}

// TestWindowPartitionInvariance pins the core property of the batched
// delivery architecture: per-packet outcomes derive from (listener,
// advertiser, packet index) streams, so how simulated time happens to be
// chopped into delivery windows — by events, run deadlines, or both —
// must not change a single reception.
func TestWindowPartitionInvariance(t *testing.T) {
	oneShot := runRSSIs(t, 10*time.Second, 10*time.Second)
	chopped := runRSSIs(t, 250*time.Millisecond, 10*time.Second)
	if len(oneShot) == 0 {
		t.Fatal("no receptions")
	}
	if len(oneShot) != len(chopped) {
		t.Fatalf("reception counts differ: %d vs %d", len(oneShot), len(chopped))
	}
	for i := range oneShot {
		if oneShot[i].At != chopped[i].At || oneShot[i].RSSI != chopped[i].RSSI {
			t.Fatalf("reception %d differs: %+v vs %+v", i, oneShot[i], chopped[i])
		}
	}
}

// TestRemoveListenerDoesNotPerturbOthers checks that detaching one
// receiver leaves every other receiver's stream untouched — removal
// must be unobservable to the remaining radios.
func TestRemoveListenerDoesNotPerturbOthers(t *testing.T) {
	run := func(removeSecond bool) []float64 {
		w := NewWorld(sim.NewEngine(), testChannel(t), 55)
		var rssis []float64
		_ = w.AddListener(&Listener{
			Name:     "keep",
			Mobility: mobility.Static{P: geom.Pt(2, 0)},
			Handler:  func(r Reception) { rssis = append(rssis, r.RSSI) },
		})
		second := &Listener{
			Name:     "other",
			Mobility: mobility.Static{P: geom.Pt(3, 0)},
			Handler:  func(Reception) {},
		}
		_ = w.AddListener(second)
		_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
		w.Run(2 * time.Second)
		if removeSecond {
			w.RemoveListener(second)
		}
		w.Run(3 * time.Second)
		return rssis
	}
	with, without := run(false), run(true)
	if len(with) == 0 {
		t.Fatal("no receptions")
	}
	if len(with) != len(without) {
		t.Fatalf("reception counts differ: %d vs %d", len(with), len(without))
	}
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("RSSI %d differs: %v vs %v", i, with[i], without[i])
		}
	}
}

// TestRemovedListenerHearsNothing checks removal actually silences the
// removed radio.
func TestRemovedListenerHearsNothing(t *testing.T) {
	w := NewWorld(sim.NewEngine(), testChannel(t), 56)
	n := 0
	l := &Listener{
		Name:     "phone",
		Mobility: mobility.Static{P: geom.Pt(1, 0)},
		Handler:  func(Reception) { n++ },
	}
	_ = w.AddListener(l)
	_ = w.AddAdvertiser(newAdvertiser("b1", geom.Pt(0, 0), 33*time.Millisecond))
	w.Run(2 * time.Second)
	if n == 0 {
		t.Fatal("expected receptions before removal")
	}
	w.RemoveListener(l)
	before := n
	w.Run(5 * time.Second)
	if n != before {
		t.Fatalf("removed listener still heard %d packets", n-before)
	}
	// Removing again (or removing a foreign listener) is a no-op.
	w.RemoveListener(l)
	w.RemoveListener(nil)
	w.RemoveListener(&Listener{Name: "stranger"})
}
