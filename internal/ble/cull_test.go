package ble

import (
	"testing"
	"time"

	"occusim/internal/geom"
	"occusim/internal/mobility"
	"occusim/internal/radio"
	"occusim/internal/sim"
)

// cullWorld builds a world with a near viable beacon and a far hopeless
// one (a steep path-loss exponent puts its mean far below the cull
// threshold), one static listener next to the near beacon, and returns
// the recorded receptions after a minute of simulated time.
func cullWorld(t *testing.T, seed uint64, cull bool) (receptions []Reception, culled uint64) {
	t.Helper()
	params := radio.DefaultIndoor()
	params.Exponent = 4.0 // steep decay so the far link is beyond the margin
	ch, err := radio.NewChannel(params, nil, seed)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorld(sim.NewEngine(), ch, seed)
	w.SetCulling(cull)
	near := &Advertiser{
		Name: "near", Payload: []byte{1}, LinkID: 1,
		PowerAt1mDBm: -59, Interval: 30 * time.Millisecond, Pos: geom.Pt(0, 0),
	}
	far := &Advertiser{
		Name: "far", Payload: []byte{2}, LinkID: 2,
		PowerAt1mDBm: -59, Interval: 30 * time.Millisecond, Pos: geom.Pt(200, 0),
	}
	if err := w.AddAdvertiser(near); err != nil {
		t.Fatal(err)
	}
	if err := w.AddAdvertiser(far); err != nil {
		t.Fatal(err)
	}
	l := &Listener{
		Name:         "phone",
		Mobility:     mobility.Static{P: geom.Pt(2, 0)},
		NoiseSigmaDB: 2,
		CaptureProb:  0.5,
		Handler:      func(r Reception) { receptions = append(receptions, r) },
	}
	if err := w.AddListener(l); err != nil {
		t.Fatal(err)
	}
	w.Run(time.Minute)
	return receptions, w.Culled()
}

// TestCullingPreservesViableLinks is the culling regression test: with a
// hopeless far link present, the culled run must be packet-for-packet
// identical to the exhaustive run (the near link never culls, so its
// draw sequences are untouched), the far link must deliver nothing
// either way (that is what the statistical margin guarantees), and the
// cull counter must show the far link was actually skipped.
func TestCullingPreservesViableLinks(t *testing.T) {
	for _, seed := range []uint64{3, 17, 91} {
		with, culled := cullWorld(t, seed, true)
		without, zero := cullWorld(t, seed, false)
		if zero != 0 {
			t.Fatalf("seed %d: exhaustive run reported %d culled packets", seed, zero)
		}
		if culled == 0 {
			t.Fatalf("seed %d: culling never fired on the hopeless link", seed)
		}
		if len(with) != len(without) {
			t.Fatalf("seed %d: %d receptions with culling, %d without", seed, len(with), len(without))
		}
		for i := range with {
			if with[i].At != without[i].At || with[i].From != without[i].From || with[i].RSSI != without[i].RSSI {
				t.Fatalf("seed %d reception %d diverged: %+v vs %+v", seed, i, with[i], without[i])
			}
		}
		for _, r := range without {
			if r.From == "far" {
				t.Fatalf("seed %d: hopeless link delivered a packet at RSSI %v", seed, r.RSSI)
			}
		}
	}
}

// TestCullThresholdSpansFadingTails pins that the cull threshold sits
// below any RSSI the viable links actually produce: every delivered
// reception's mean-free level must clear the threshold by construction
// (otherwise culling could race the fading tails).
func TestCullThresholdSpansFadingTails(t *testing.T) {
	receptions, _ := cullWorld(t, 5, true)
	if len(receptions) == 0 {
		t.Fatal("no receptions from the near link")
	}
}
