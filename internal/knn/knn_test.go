package knn

import (
	"testing"
	"testing/quick"
)

func clusters() ([][]float64, []string) {
	var X [][]float64
	var y []string
	for i := 0; i < 10; i++ {
		X = append(X, []float64{0 + float64(i)*0.01, 0})
		y = append(y, "a")
		X = append(X, []float64{5 + float64(i)*0.01, 5})
		y = append(y, "b")
	}
	return X, y
}

func TestTrainErrors(t *testing.T) {
	X, y := clusters()
	if _, err := Train(nil, nil, 1); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Train(X, y[:1], 1); err == nil {
		t.Error("mismatched labels should fail")
	}
	if _, err := Train(X, y, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Train(X, y, len(X)+1); err == nil {
		t.Error("k>n should fail")
	}
	if _, err := Train([][]float64{{1, 2}, {3}}, []string{"a", "b"}, 1); err == nil {
		t.Error("ragged rows should fail")
	}
}

func TestPredictClusters(t *testing.T) {
	X, y := clusters()
	c, err := Train(X, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 3 {
		t.Fatalf("K = %d", c.K())
	}
	if got := c.Predict([]float64{0.1, 0.1}); got != "a" {
		t.Errorf("near cluster a predicted %q", got)
	}
	if got := c.Predict([]float64{5.1, 4.9}); got != "b" {
		t.Errorf("near cluster b predicted %q", got)
	}
	preds := c.PredictBatch(X)
	for i := range preds {
		if preds[i] != y[i] {
			t.Fatalf("training point %d misclassified", i)
		}
	}
}

func TestTieBreaksTowardNearest(t *testing.T) {
	// k=2 with one neighbour from each class: the closer one must win.
	X := [][]float64{{0}, {1}}
	y := []string{"near", "far"}
	c, err := Train(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Predict([]float64{0.1}); got != "near" {
		t.Fatalf("tie broke to %q, want near", got)
	}
	if got := c.Predict([]float64{0.9}); got != "far" {
		t.Fatalf("tie broke to %q, want far", got)
	}
}

func TestTrainCopiesData(t *testing.T) {
	X := [][]float64{{0}, {10}}
	y := []string{"a", "b"}
	c, _ := Train(X, y, 1)
	X[0][0] = 100 // mutate the caller's slice
	if got := c.Predict([]float64{0.5}); got != "a" {
		t.Fatal("classifier shares memory with caller")
	}
}

// Property: k=1 prediction always equals the label of the exact nearest
// training point when queried at a training point.
func TestQuickExactMatch(t *testing.T) {
	X, y := clusters()
	c, err := Train(X, y, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(i uint8) bool {
		idx := int(i) % len(X)
		return c.Predict(X[idx]) == y[idx]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
