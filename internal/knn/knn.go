// Package knn implements a k-nearest-neighbour classifier over the same
// fingerprint feature vectors as the SVM, serving as an extra
// scene-analysis baseline in the classifier ablation (the Redpin system
// the paper cites for its kernel choice is itself fingerprint-kNN-like).
package knn

import (
	"fmt"
	"math"
	"sort"
)

// Classifier is a trained (memorised) k-NN model.
type Classifier struct {
	k      int
	points [][]float64
	labels []string
}

// Train memorises the training set. k must be positive and no larger
// than the training-set size; rows must be rectangular.
func Train(X [][]float64, labels []string, k int) (*Classifier, error) {
	if len(X) == 0 || len(X) != len(labels) {
		return nil, fmt.Errorf("knn: bad training set (%d rows, %d labels)", len(X), len(labels))
	}
	if k < 1 || k > len(X) {
		return nil, fmt.Errorf("knn: k=%d outside [1, %d]", k, len(X))
	}
	dim := len(X[0])
	for i, row := range X {
		if len(row) != dim {
			return nil, fmt.Errorf("knn: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	c := &Classifier{k: k}
	for i, row := range X {
		cp := make([]float64, len(row))
		copy(cp, row)
		c.points = append(c.points, cp)
		c.labels = append(c.labels, labels[i])
	}
	return c, nil
}

// K returns the neighbour count.
func (c *Classifier) K() int { return c.k }

// Predict returns the majority label among the k nearest training points
// (Euclidean distance). Ties break towards the label of the closest
// tied-vote neighbour, making predictions deterministic.
func (c *Classifier) Predict(x []float64) string {
	type neighbour struct {
		dist  float64
		index int
	}
	ns := make([]neighbour, len(c.points))
	for i, p := range c.points {
		var d2 float64
		for j := range p {
			d := p[j] - x[j]
			d2 += d * d
		}
		ns[i] = neighbour{dist: math.Sqrt(d2), index: i}
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].dist != ns[j].dist {
			return ns[i].dist < ns[j].dist
		}
		return ns[i].index < ns[j].index
	})
	votes := map[string]int{}
	first := map[string]int{} // rank of each label's closest neighbour
	for rank := 0; rank < c.k; rank++ {
		l := c.labels[ns[rank].index]
		votes[l]++
		if _, seen := first[l]; !seen {
			first[l] = rank
		}
	}
	best, bestVotes, bestFirst := "", -1, len(ns)
	for l, v := range votes {
		if v > bestVotes || (v == bestVotes && first[l] < bestFirst) {
			best, bestVotes, bestFirst = l, v, first[l]
		}
	}
	return best
}

// PredictBatch maps Predict over the rows of X.
func (c *Classifier) PredictBatch(X [][]float64) []string {
	out := make([]string, len(X))
	for i, x := range X {
		out[i] = c.Predict(x)
	}
	return out
}
