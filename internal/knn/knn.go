// Package knn implements a k-nearest-neighbour classifier over the same
// fingerprint feature vectors as the SVM, serving as an extra
// scene-analysis baseline in the classifier ablation (the Redpin system
// the paper cites for its kernel choice is itself fingerprint-kNN-like).
package knn

import "fmt"

// Classifier is a trained (memorised) k-NN model.
type Classifier struct {
	k      int
	points [][]float64
	labels []string
}

// Train memorises the training set. k must be positive and no larger
// than the training-set size; rows must be rectangular.
func Train(X [][]float64, labels []string, k int) (*Classifier, error) {
	if len(X) == 0 || len(X) != len(labels) {
		return nil, fmt.Errorf("knn: bad training set (%d rows, %d labels)", len(X), len(labels))
	}
	if k < 1 || k > len(X) {
		return nil, fmt.Errorf("knn: k=%d outside [1, %d]", k, len(X))
	}
	dim := len(X[0])
	for i, row := range X {
		if len(row) != dim {
			return nil, fmt.Errorf("knn: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	c := &Classifier{k: k}
	for i, row := range X {
		cp := make([]float64, len(row))
		copy(cp, row)
		c.points = append(c.points, cp)
		c.labels = append(c.labels, labels[i])
	}
	return c, nil
}

// K returns the neighbour count.
func (c *Classifier) K() int { return c.k }

// Predict returns the majority label among the k nearest training points
// (Euclidean distance). Ties break towards the label of the closest
// tied-vote neighbour, making predictions deterministic.
//
// The k nearest are found by partial selection — a bounded insertion
// into a k-sized buffer ordered by (squared distance, index) — instead
// of materialising and sorting the full distance list; k is tiny next to
// the training-set size, so selection is O(n·k) with no allocation
// beyond the buffer, versus O(n·log n) and an n-sized slice for a sort.
func (c *Classifier) Predict(x []float64) string {
	type neighbour struct {
		d2    float64
		index int
	}
	ns := make([]neighbour, 0, c.k)
	for i, p := range c.points {
		var d2 float64
		for j := range p {
			d := p[j] - x[j]
			d2 += d * d
		}
		if len(ns) == c.k {
			last := ns[c.k-1]
			if d2 > last.d2 || (d2 == last.d2 && i > last.index) {
				continue
			}
			ns = ns[:c.k-1]
		}
		// Insert keeping (d2, index) order; equal squared distances keep
		// the lower index first, matching a stable full sort.
		pos := len(ns)
		for pos > 0 && (ns[pos-1].d2 > d2 || (ns[pos-1].d2 == d2 && ns[pos-1].index > i)) {
			pos--
		}
		ns = append(ns, neighbour{})
		copy(ns[pos+1:], ns[pos:])
		ns[pos] = neighbour{d2: d2, index: i}
	}
	votes := map[string]int{}
	first := map[string]int{} // rank of each label's closest neighbour
	for rank := range ns {
		l := c.labels[ns[rank].index]
		votes[l]++
		if _, seen := first[l]; !seen {
			first[l] = rank
		}
	}
	best, bestVotes, bestFirst := "", -1, len(c.points)
	for l, v := range votes {
		if v > bestVotes || (v == bestVotes && first[l] < bestFirst) {
			best, bestVotes, bestFirst = l, v, first[l]
		}
	}
	return best
}

// PredictBatch maps Predict over the rows of X.
func (c *Classifier) PredictBatch(X [][]float64) []string {
	out := make([]string, len(X))
	for i, x := range X {
		out[i] = c.Predict(x)
	}
	return out
}
