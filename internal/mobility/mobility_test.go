package mobility

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"occusim/internal/geom"
	"occusim/internal/rng"
)

func TestStatic(t *testing.T) {
	s := Static{P: geom.Pt(3, 4)}
	if s.Position(0) != geom.Pt(3, 4) || s.Position(time.Hour) != geom.Pt(3, 4) {
		t.Fatal("static subject moved")
	}
	if s.End() != 0 {
		t.Fatal("static end should be 0")
	}
}

func TestPathConstantSpeed(t *testing.T) {
	p, err := NewPath([]geom.Point{geom.Pt(0, 0), geom.Pt(10, 0)}, 2) // 5 s walk
	if err != nil {
		t.Fatal(err)
	}
	if p.End() != 5*time.Second {
		t.Fatalf("End = %v", p.End())
	}
	if got := p.Position(0); got != geom.Pt(0, 0) {
		t.Errorf("start = %v", got)
	}
	mid := p.Position(2500 * time.Millisecond)
	if math.Abs(mid.X-5) > 1e-6 || mid.Y != 0 {
		t.Errorf("midpoint = %v", mid)
	}
	if got := p.Position(time.Hour); got != geom.Pt(10, 0) {
		t.Errorf("after end = %v", got)
	}
	if got := p.Position(-time.Second); got != geom.Pt(0, 0) {
		t.Errorf("before start = %v", got)
	}
}

func TestPathMultipleWaypoints(t *testing.T) {
	wp := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 0), geom.Pt(3, 4)}
	p, err := NewPath(wp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.End() != 7*time.Second { // 3 m + 4 m at 1 m/s
		t.Fatalf("End = %v", p.End())
	}
	corner := p.Position(3 * time.Second)
	if corner.Dist(geom.Pt(3, 0)) > 1e-6 {
		t.Errorf("corner = %v", corner)
	}
}

func TestPathErrors(t *testing.T) {
	if _, err := NewPath(nil, 1); err == nil {
		t.Error("empty waypoints should error")
	}
	if _, err := NewPath([]geom.Point{geom.Pt(0, 0)}, 0); err == nil {
		t.Error("zero speed should error")
	}
}

func TestPathSingleWaypoint(t *testing.T) {
	p, err := NewPath([]geom.Point{geom.Pt(2, 2)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Position(time.Minute); got != geom.Pt(2, 2) {
		t.Fatalf("Position = %v", got)
	}
}

func TestRandomWaypointConfigValidate(t *testing.T) {
	if err := DefaultWalk().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []RandomWaypointConfig{
		{SpeedMin: 0, SpeedMax: 1},
		{SpeedMin: 2, SpeedMax: 1},
		{SpeedMin: 1, SpeedMax: 2, PauseMin: -time.Second},
		{SpeedMin: 1, SpeedMax: 2, PauseMin: time.Second, PauseMax: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestRandomWaypointStaysInArea(t *testing.T) {
	area := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 8))
	s, err := NewRandomWaypoint(area, DefaultWalk(), 5*time.Minute, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.End() < 5*time.Minute {
		t.Fatalf("schedule too short: %v", s.End())
	}
	for dt := time.Duration(0); dt <= s.End(); dt += time.Second {
		p := s.Position(dt)
		if !area.Contains(p) {
			t.Fatalf("position %v at %v outside area", p, dt)
		}
	}
}

func TestRandomWaypointDeterministic(t *testing.T) {
	area := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 8))
	s1, _ := NewRandomWaypoint(area, DefaultWalk(), time.Minute, rng.New(5))
	s2, _ := NewRandomWaypoint(area, DefaultWalk(), time.Minute, rng.New(5))
	for dt := time.Duration(0); dt <= s1.End(); dt += 500 * time.Millisecond {
		if s1.Position(dt) != s2.Position(dt) {
			t.Fatalf("schedules diverge at %v", dt)
		}
	}
}

func TestRandomWaypointErrors(t *testing.T) {
	area := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	if _, err := NewRandomWaypoint(geom.Rect{}, DefaultWalk(), time.Minute, rng.New(1)); err == nil {
		t.Error("empty area should error")
	}
	if _, err := NewRandomWaypoint(area, DefaultWalk(), 0, rng.New(1)); err == nil {
		t.Error("zero duration should error")
	}
	if _, err := NewRandomWaypoint(area, RandomWaypointConfig{}, time.Minute, rng.New(1)); err == nil {
		t.Error("invalid config should error")
	}
}

func TestTourVisitsMultipleAreas(t *testing.T) {
	areas := []geom.Rect{
		geom.NewRect(geom.Pt(0, 0), geom.Pt(4, 4)),
		geom.NewRect(geom.Pt(6, 0), geom.Pt(10, 4)),
		geom.NewRect(geom.Pt(0, 6), geom.Pt(4, 10)),
	}
	s, err := NewTour(areas, DefaultWalk(), 10*time.Minute, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	visited := make(map[int]bool)
	for dt := time.Duration(0); dt <= s.End(); dt += time.Second {
		p := s.Position(dt)
		for i, a := range areas {
			if a.Contains(p) {
				visited[i] = true
			}
		}
	}
	if len(visited) != len(areas) {
		t.Fatalf("visited %d/%d areas over 10 min", len(visited), len(areas))
	}
}

func TestTourNeverRepeatsAreaImmediately(t *testing.T) {
	areas := []geom.Rect{
		geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)),
		geom.NewRect(geom.Pt(10, 10), geom.Pt(11, 11)),
	}
	s, err := NewTour(areas, DefaultWalk(), 5*time.Minute, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// With two far-apart areas and no immediate repetition, consecutive
	// dwell legs must alternate between the areas.
	var dwellAreas []int
	for _, leg := range s.Legs() {
		if leg.From == leg.To {
			for i, a := range areas {
				if a.Contains(leg.From) {
					dwellAreas = append(dwellAreas, i)
				}
			}
		}
	}
	for i := 1; i < len(dwellAreas); i++ {
		if dwellAreas[i] == dwellAreas[i-1] {
			t.Fatalf("tour dwelled twice in a row in area %d", dwellAreas[i])
		}
	}
}

func TestTourErrors(t *testing.T) {
	if _, err := NewTour(nil, DefaultWalk(), time.Minute, rng.New(1)); err == nil {
		t.Error("no areas should error")
	}
	if _, err := NewTour([]geom.Rect{{}}, DefaultWalk(), time.Minute, rng.New(1)); err == nil {
		t.Error("empty area should error")
	}
	ok := []geom.Rect{geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))}
	if _, err := NewTour(ok, DefaultWalk(), 0, rng.New(1)); err == nil {
		t.Error("zero duration should error")
	}
	if _, err := NewTour(ok, RandomWaypointConfig{}, time.Minute, rng.New(1)); err == nil {
		t.Error("bad config should error")
	}
}

func TestSample(t *testing.T) {
	p, _ := NewPath([]geom.Point{geom.Pt(0, 0), geom.Pt(4, 0)}, 1)
	pts := Sample(p, time.Second)
	if len(pts) != 5 { // t = 0..4 s inclusive
		t.Fatalf("samples = %d", len(pts))
	}
	if pts[0] != geom.Pt(0, 0) || pts[4] != geom.Pt(4, 0) {
		t.Fatalf("endpoints = %v, %v", pts[0], pts[4])
	}
	if Sample(p, 0) != nil {
		t.Fatal("zero step should return nil")
	}
}

func TestEmptySchedulePosition(t *testing.T) {
	var s Schedule
	if got := s.Position(time.Second); got != (geom.Point{}) {
		t.Fatalf("empty schedule position = %v", got)
	}
	if s.End() != 0 {
		t.Fatalf("empty schedule end = %v", s.End())
	}
}

// Property: movement speed between consecutive samples never exceeds the
// configured maximum (within numerical tolerance).
func TestQuickSpeedBounded(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultWalk()
		area := geom.NewRect(geom.Pt(0, 0), geom.Pt(20, 15))
		s, err := NewRandomWaypoint(area, cfg, 2*time.Minute, rng.New(seed))
		if err != nil {
			return false
		}
		const step = 100 * time.Millisecond
		prev := s.Position(0)
		for dt := step; dt <= s.End(); dt += step {
			cur := s.Position(dt)
			speed := cur.Dist(prev) / step.Seconds()
			if speed > cfg.SpeedMax+0.01 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: positions are continuous — no teleporting between consecutive
// millisecond samples.
func TestQuickContinuity(t *testing.T) {
	f := func(seed uint64) bool {
		areas := []geom.Rect{
			geom.NewRect(geom.Pt(0, 0), geom.Pt(5, 5)),
			geom.NewRect(geom.Pt(8, 8), geom.Pt(12, 12)),
		}
		s, err := NewTour(areas, DefaultWalk(), time.Minute, rng.New(seed))
		if err != nil {
			return false
		}
		const step = 50 * time.Millisecond
		prev := s.Position(0)
		for dt := step; dt <= s.End(); dt += step {
			cur := s.Position(dt)
			if cur.Dist(prev) > 0.2 { // 1.5 m/s * 50 ms = 0.075 m plus slack
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
