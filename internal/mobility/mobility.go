// Package mobility provides the movement models that drive the simulated
// test subjects: the static placements of the signal-analysis experiments
// (Figures 4–6), the constant-speed walks between transmitters of the
// dynamic tests (Figures 7–8, 1–1.5 m/s), and the room-to-room tours used
// to collect classification test data (Section VI).
package mobility

import (
	"fmt"
	"sort"
	"time"

	"occusim/internal/geom"
	"occusim/internal/rng"
)

// Model yields a position for every simulated time. Implementations must
// be deterministic: repeated calls with the same t return the same point.
type Model interface {
	// Position returns the position at time t. Times before the start
	// clamp to the initial position, times after the end to the final
	// position.
	Position(t time.Duration) geom.Point
	// End returns the time at which movement stops.
	End() time.Duration
}

// Static is a motionless subject, used for the static signal tests.
type Static struct {
	P geom.Point
}

// Position implements Model.
func (s Static) Position(time.Duration) geom.Point { return s.P }

// End implements Model.
func (s Static) End() time.Duration { return 0 }

// Leg is one piece of a movement schedule: linear motion from From to To
// over [Start, End). A leg with From == To is a dwell.
type Leg struct {
	Start, End time.Duration
	From, To   geom.Point
}

// Schedule is a deterministic piecewise-linear movement plan.
type Schedule struct {
	legs []Leg
}

// Legs returns a copy of the schedule's legs.
func (s *Schedule) Legs() []Leg { return append([]Leg(nil), s.legs...) }

// End implements Model.
func (s *Schedule) End() time.Duration {
	if len(s.legs) == 0 {
		return 0
	}
	return s.legs[len(s.legs)-1].End
}

// Position implements Model.
func (s *Schedule) Position(t time.Duration) geom.Point {
	if len(s.legs) == 0 {
		return geom.Point{}
	}
	if t <= s.legs[0].Start {
		return s.legs[0].From
	}
	last := s.legs[len(s.legs)-1]
	if t >= last.End {
		return last.To
	}
	// Binary search for the leg containing t.
	i := sort.Search(len(s.legs), func(i int) bool { return s.legs[i].End > t })
	leg := s.legs[i]
	if leg.End == leg.Start {
		return leg.To
	}
	frac := float64(t-leg.Start) / float64(leg.End-leg.Start)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return leg.From.Lerp(leg.To, frac)
}

// NewPath builds a schedule that walks through the waypoints at the given
// constant speed (m/s), starting at time 0. At least one waypoint and a
// positive speed are required.
func NewPath(waypoints []geom.Point, speed float64) (*Schedule, error) {
	if len(waypoints) == 0 {
		return nil, fmt.Errorf("mobility: path needs at least one waypoint")
	}
	if speed <= 0 {
		return nil, fmt.Errorf("mobility: speed must be positive, got %v", speed)
	}
	s := &Schedule{}
	now := time.Duration(0)
	for i := 0; i+1 < len(waypoints); i++ {
		from, to := waypoints[i], waypoints[i+1]
		dur := time.Duration(from.Dist(to) / speed * float64(time.Second))
		s.legs = append(s.legs, Leg{Start: now, End: now + dur, From: from, To: to})
		now += dur
	}
	if len(s.legs) == 0 { // single waypoint: a zero-length dwell
		s.legs = append(s.legs, Leg{From: waypoints[0], To: waypoints[0]})
	}
	return s, nil
}

// Stop is one station of a collection walk: a point and how long to
// dwell there.
type Stop struct {
	P     geom.Point
	Dwell time.Duration
}

// NewStops builds a schedule that walks through the stops at the given
// constant speed, dwelling at each. It models the fingerprint operator
// standing at each survey point while samples accumulate.
func NewStops(stops []Stop, speed float64) (*Schedule, error) {
	if len(stops) == 0 {
		return nil, fmt.Errorf("mobility: stops walk needs at least one stop")
	}
	if speed <= 0 {
		return nil, fmt.Errorf("mobility: speed must be positive, got %v", speed)
	}
	s := &Schedule{}
	now := time.Duration(0)
	cur := stops[0].P
	for i, stop := range stops {
		if i > 0 {
			walk := time.Duration(cur.Dist(stop.P) / speed * float64(time.Second))
			s.legs = append(s.legs, Leg{Start: now, End: now + walk, From: cur, To: stop.P})
			now += walk
			cur = stop.P
		}
		if stop.Dwell > 0 {
			s.legs = append(s.legs, Leg{Start: now, End: now + stop.Dwell, From: cur, To: cur})
			now += stop.Dwell
		}
	}
	if len(s.legs) == 0 { // single stop without dwell
		s.legs = append(s.legs, Leg{From: cur, To: cur})
	}
	return s, nil
}

// RandomWaypointConfig parameterises NewRandomWaypoint and NewTour.
type RandomWaypointConfig struct {
	// SpeedMin/SpeedMax bound the walking speed in m/s. The paper's
	// dynamic tests use 1–1.5 m/s.
	SpeedMin, SpeedMax float64
	// PauseMin/PauseMax bound the dwell at each waypoint.
	PauseMin, PauseMax time.Duration
}

// Validate reports the first invalid field, or nil.
func (c RandomWaypointConfig) Validate() error {
	switch {
	case c.SpeedMin <= 0:
		return fmt.Errorf("mobility: SpeedMin must be positive, got %v", c.SpeedMin)
	case c.SpeedMax < c.SpeedMin:
		return fmt.Errorf("mobility: SpeedMax %v < SpeedMin %v", c.SpeedMax, c.SpeedMin)
	case c.PauseMin < 0:
		return fmt.Errorf("mobility: PauseMin must be non-negative, got %v", c.PauseMin)
	case c.PauseMax < c.PauseMin:
		return fmt.Errorf("mobility: PauseMax %v < PauseMin %v", c.PauseMax, c.PauseMin)
	}
	return nil
}

// DefaultWalk returns the paper's walking parameters: 1–1.5 m/s with
// short pauses.
func DefaultWalk() RandomWaypointConfig {
	return RandomWaypointConfig{
		SpeedMin: 1.0,
		SpeedMax: 1.5,
		PauseMin: 2 * time.Second,
		PauseMax: 10 * time.Second,
	}
}

func (c RandomWaypointConfig) speed(r *rng.Source) float64 {
	return r.Uniform(c.SpeedMin, c.SpeedMax)
}

func (c RandomWaypointConfig) pause(r *rng.Source) time.Duration {
	if c.PauseMax == c.PauseMin {
		return c.PauseMin
	}
	return c.PauseMin + time.Duration(r.Uniform(0, float64(c.PauseMax-c.PauseMin)))
}

func randomPointIn(area geom.Rect, r *rng.Source) geom.Point {
	return geom.Pt(
		r.Uniform(area.Min.X, area.Max.X),
		r.Uniform(area.Min.Y, area.Max.Y),
	)
}

// NewRandomWaypoint builds the classic random-waypoint model inside one
// area: pick a random point, walk to it at a random speed, pause, repeat,
// until the schedule covers at least duration.
func NewRandomWaypoint(area geom.Rect, cfg RandomWaypointConfig, duration time.Duration, r *rng.Source) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if area.Area() <= 0 {
		return nil, fmt.Errorf("mobility: random waypoint area is empty")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("mobility: duration must be positive, got %v", duration)
	}
	s := &Schedule{}
	now := time.Duration(0)
	cur := randomPointIn(area, r)
	for now < duration {
		next := randomPointIn(area, r)
		walk := time.Duration(cur.Dist(next) / cfg.speed(r) * float64(time.Second))
		s.legs = append(s.legs, Leg{Start: now, End: now + walk, From: cur, To: next})
		now += walk
		if p := cfg.pause(r); p > 0 {
			s.legs = append(s.legs, Leg{Start: now, End: now + p, From: next, To: next})
			now += p
		}
		cur = next
	}
	return s, nil
}

// NewTour builds a room-to-room tour: repeatedly pick one of the areas
// (never the same one twice in a row when more than one is available),
// walk in a straight line to a random interior point, dwell there, and
// continue until the schedule covers at least duration. This is the
// movement pattern of the paper's classification test subject, who moved
// within a house and reported the room they were in.
func NewTour(areas []geom.Rect, cfg RandomWaypointConfig, duration time.Duration, r *rng.Source) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(areas) == 0 {
		return nil, fmt.Errorf("mobility: tour needs at least one area")
	}
	for i, a := range areas {
		if a.Area() <= 0 {
			return nil, fmt.Errorf("mobility: tour area %d is empty", i)
		}
	}
	if duration <= 0 {
		return nil, fmt.Errorf("mobility: duration must be positive, got %v", duration)
	}
	s := &Schedule{}
	now := time.Duration(0)
	cur := randomPointIn(areas[r.Intn(len(areas))], r)
	last := -1
	for now < duration {
		idx := r.Intn(len(areas))
		if len(areas) > 1 {
			for idx == last {
				idx = r.Intn(len(areas))
			}
		}
		last = idx
		next := randomPointIn(areas[idx], r)
		walk := time.Duration(cur.Dist(next) / cfg.speed(r) * float64(time.Second))
		s.legs = append(s.legs, Leg{Start: now, End: now + walk, From: cur, To: next})
		now += walk
		if p := cfg.pause(r); p > 0 {
			s.legs = append(s.legs, Leg{Start: now, End: now + p, From: next, To: next})
			now += p
		}
		cur = next
	}
	return s, nil
}

// Sample returns positions sampled every step from t = 0 through m.End()
// (inclusive of the final point), useful for plotting trajectories and
// for collecting labelled ground truth.
func Sample(m Model, step time.Duration) []geom.Point {
	if step <= 0 {
		return nil
	}
	var pts []geom.Point
	for t := time.Duration(0); t <= m.End(); t += step {
		pts = append(pts, m.Position(t))
	}
	return pts
}
