package fingerprint

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"occusim/internal/filter"
	"occusim/internal/ibeacon"
)

var (
	idA = ibeacon.BeaconID{UUID: ibeacon.MustUUID("C0FFEE00-BEEF-4A11-8000-000000000001"), Major: 1, Minor: 1}
	idB = ibeacon.BeaconID{UUID: ibeacon.MustUUID("C0FFEE00-BEEF-4A11-8000-000000000001"), Major: 1, Minor: 2}
	idC = ibeacon.BeaconID{UUID: ibeacon.MustUUID("C0FFEE00-BEEF-4A11-8000-000000000001"), Major: 1, Minor: 3}
)

func sample(room string, dists map[ibeacon.BeaconID]float64) Sample {
	return Sample{Room: room, Distances: dists}
}

func TestFeaturesOrderAndMissing(t *testing.T) {
	d := New([]ibeacon.BeaconID{idA, idB, idC})
	s := sample("kitchen", map[ibeacon.BeaconID]float64{idB: 3.5, idA: 1.2})
	f := d.Features(s)
	if len(f) != 3 {
		t.Fatalf("features = %v", f)
	}
	if f[0] != 1.2 || f[1] != 3.5 {
		t.Fatalf("order wrong: %v", f)
	}
	if f[2] != MissingDistance {
		t.Fatalf("missing beacon = %v, want %v", f[2], MissingDistance)
	}
}

func TestFeaturesIgnoresUnknownBeacons(t *testing.T) {
	d := New([]ibeacon.BeaconID{idA})
	s := sample("x", map[ibeacon.BeaconID]float64{idA: 2, idC: 9})
	f := d.Features(s)
	if len(f) != 1 || f[0] != 2 {
		t.Fatalf("features = %v", f)
	}
}

func TestMatrixAndLabels(t *testing.T) {
	d := New([]ibeacon.BeaconID{idA, idB})
	d.Add(sample("kitchen", map[ibeacon.BeaconID]float64{idA: 1}))
	d.Add(sample("living", map[ibeacon.BeaconID]float64{idB: 2}))
	d.Add(sample("kitchen", map[ibeacon.BeaconID]float64{idA: 1.5}))
	X, y := d.Matrix()
	if len(X) != 3 || len(y) != 3 {
		t.Fatalf("matrix = %d×, labels = %d", len(X), len(y))
	}
	labels := d.Labels()
	if len(labels) != 2 || labels[0] != "kitchen" || labels[1] != "living" {
		t.Fatalf("labels = %v", labels)
	}
	counts := d.CountByRoom()
	if counts["kitchen"] != 2 || counts["living"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFromEstimates(t *testing.T) {
	es := []filter.Estimate{
		{Beacon: idA, Distance: 2.5},
		{Beacon: idB, Distance: 7.1},
	}
	s := FromEstimates("study", 42*time.Second, es)
	if s.Room != "study" || s.At != 42*time.Second {
		t.Fatalf("sample meta: %+v", s)
	}
	if s.Distances[idA] != 2.5 || s.Distances[idB] != 7.1 {
		t.Fatalf("distances: %v", s.Distances)
	}
}

func TestSplit(t *testing.T) {
	d := New([]ibeacon.BeaconID{idA})
	for i := 0; i < 100; i++ {
		room := "a"
		if i%2 == 1 {
			room = "b"
		}
		d.Add(sample(room, map[ibeacon.BeaconID]float64{idA: float64(i)}))
	}
	train, test, err := d.Split(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 70 || test.Len() != 30 {
		t.Fatalf("split = %d / %d", train.Len(), test.Len())
	}
	// No sample lost or duplicated: distances are unique markers.
	seen := map[float64]bool{}
	for _, s := range append(train.Samples, test.Samples...) {
		v := s.Distances[idA]
		if seen[v] {
			t.Fatalf("duplicate sample %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("samples preserved = %d", len(seen))
	}
}

func TestSplitDeterministic(t *testing.T) {
	d := New([]ibeacon.BeaconID{idA})
	for i := 0; i < 20; i++ {
		d.Add(sample("a", map[ibeacon.BeaconID]float64{idA: float64(i)}))
	}
	t1, _, _ := d.Split(0.5, 9)
	t2, _, _ := d.Split(0.5, 9)
	for i := range t1.Samples {
		if t1.Samples[i].Distances[idA] != t2.Samples[i].Distances[idA] {
			t.Fatal("same-seed splits differ")
		}
	}
}

func TestSplitErrors(t *testing.T) {
	d := New([]ibeacon.BeaconID{idA})
	d.Add(sample("a", nil))
	if _, _, err := d.Split(0.5, 1); err == nil {
		t.Error("single sample split should fail")
	}
	d.Add(sample("b", nil))
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := d.Split(frac, 1); err == nil {
			t.Errorf("frac %v should fail", frac)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := New([]ibeacon.BeaconID{idA, idB})
	d.Add(Sample{Room: "kitchen", At: 3 * time.Second,
		Distances: map[ibeacon.BeaconID]float64{idA: 1.25, idB: 4.5}})
	d.Add(Sample{Room: "outside", At: 9 * time.Second,
		Distances: map[ibeacon.BeaconID]float64{idB: 11}})

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Beacons) != 2 || back.Beacons[0] != idA || back.Beacons[1] != idB {
		t.Fatalf("beacons = %v", back.Beacons)
	}
	if back.Len() != 2 {
		t.Fatalf("samples = %d", back.Len())
	}
	s := back.Samples[0]
	if s.Room != "kitchen" || s.At != 3*time.Second || s.Distances[idA] != 1.25 {
		t.Fatalf("sample 0 = %+v", s)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Error("bad json should fail")
	}
	if _, err := ReadJSON(strings.NewReader(`{"beacons":["nope"]}`)); err == nil {
		t.Error("bad beacon id should fail")
	}
	long := `{"beacons":[],"samples":[{"room":"a","distances":{"zzz":1}}]}`
	if _, err := ReadJSON(strings.NewReader(long)); err == nil {
		t.Error("bad distance key should fail")
	}
}

// Property: features always have the dataset's dimensionality and only
// finite values.
func TestQuickFeatureShape(t *testing.T) {
	d := New([]ibeacon.BeaconID{idA, idB, idC})
	f := func(dA, dB float64, haveA, haveB bool) bool {
		dist := map[ibeacon.BeaconID]float64{}
		if haveA {
			dist[idA] = dA
		}
		if haveB {
			dist[idB] = dB
		}
		feats := d.Features(sample("r", dist))
		return len(feats) == 3 && feats[2] == MissingDistance
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
