// Package fingerprint implements the scene-analysis dataset of Section
// VI: labelled samples of per-beacon estimated distances, collected by an
// operator walking the building ("a data collection phase is needed,
// requiring an operator that walks around the building collecting samples
// (beacon identifiers and their detected distances)"), stored on the
// server, and used to train the supervised room classifier.
//
// A Sample maps beacon identities to estimated distances; a Dataset fixes
// a beacon ordering so samples become fixed-width feature vectors with a
// sentinel distance for beacons that were not heard.
package fingerprint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"occusim/internal/filter"
	"occusim/internal/ibeacon"
	"occusim/internal/rng"
)

// MissingDistance is the feature value used for beacons absent from a
// sample. It matches the ranging clamp of the distance estimators: "not
// heard" and "at the edge of radio range" are deliberately adjacent in
// feature space.
const MissingDistance = 20.0

// Sample is one labelled observation.
type Sample struct {
	// Room is the ground-truth label (a room name or building.Outside).
	Room string `json:"room"`
	// At is the collection time within its trace.
	At time.Duration `json:"at"`
	// Distances holds the filtered distance estimate per heard beacon.
	Distances map[ibeacon.BeaconID]float64 `json:"-"`
}

// sampleJSON is the wire form of Sample; beacon IDs become strings.
type sampleJSON struct {
	Room      string             `json:"room"`
	AtSeconds float64            `json:"atSeconds"`
	Distances map[string]float64 `json:"distances"`
}

// FromEstimates builds a sample from the ranging filter's current
// estimates.
func FromEstimates(room string, at time.Duration, estimates []filter.Estimate) Sample {
	s := Sample{Room: room, At: at, Distances: make(map[ibeacon.BeaconID]float64, len(estimates))}
	for _, e := range estimates {
		s.Distances[e.Beacon] = e.Distance
	}
	return s
}

// Dataset is an ordered collection of samples with a fixed beacon list
// defining the feature layout.
type Dataset struct {
	// Beacons fixes the feature order. Features(s)[i] is the distance to
	// Beacons[i].
	Beacons []ibeacon.BeaconID
	// Samples are the labelled observations.
	Samples []Sample
}

// New creates a dataset over the given beacon list. The order is
// preserved and defines the feature layout.
func New(beacons []ibeacon.BeaconID) *Dataset {
	return &Dataset{Beacons: append([]ibeacon.BeaconID(nil), beacons...)}
}

// Add appends a sample.
func (d *Dataset) Add(s Sample) { d.Samples = append(d.Samples, s) }

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// Features converts a sample to the fixed-width vector: the distance per
// known beacon, MissingDistance when the beacon was not heard. Beacons in
// the sample but not in the dataset's list are ignored.
func (d *Dataset) Features(s Sample) []float64 {
	out := make([]float64, len(d.Beacons))
	for i, id := range d.Beacons {
		if v, ok := s.Distances[id]; ok {
			out[i] = v
		} else {
			out[i] = MissingDistance
		}
	}
	return out
}

// Matrix returns the feature matrix and label vector of the whole
// dataset.
func (d *Dataset) Matrix() ([][]float64, []string) {
	X := make([][]float64, len(d.Samples))
	y := make([]string, len(d.Samples))
	for i, s := range d.Samples {
		X[i] = d.Features(s)
		y[i] = s.Room
	}
	return X, y
}

// Labels returns the distinct room labels present, sorted.
func (d *Dataset) Labels() []string {
	set := map[string]bool{}
	for _, s := range d.Samples {
		set[s.Room] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// CountByRoom returns the number of samples per label.
func (d *Dataset) CountByRoom() map[string]int {
	out := map[string]int{}
	for _, s := range d.Samples {
		out[s.Room]++
	}
	return out
}

// Split partitions the dataset into train and test subsets, keeping
// trainFrac of the samples (rounded down, at least one sample in each
// side when possible) after a deterministic shuffle. The paper does the
// same: "Part of the collected data was then used to build the
// aforementioned SVM model (training set), while another part was used to
// test its behaviors (testing set)".
func (d *Dataset) Split(trainFrac float64, seed uint64) (train, test *Dataset, err error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, nil, fmt.Errorf("fingerprint: train fraction %v outside (0,1)", trainFrac)
	}
	n := len(d.Samples)
	if n < 2 {
		return nil, nil, fmt.Errorf("fingerprint: need at least 2 samples to split, have %d", n)
	}
	perm := rng.New(seed).Perm(n)
	cut := int(float64(n) * trainFrac)
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	train = New(d.Beacons)
	test = New(d.Beacons)
	for i, pi := range perm {
		if i < cut {
			train.Add(d.Samples[pi])
		} else {
			test.Add(d.Samples[pi])
		}
	}
	return train, test, nil
}

// datasetJSON is the serialised form of a Dataset.
type datasetJSON struct {
	Beacons []string     `json:"beacons"`
	Samples []sampleJSON `json:"samples"`
}

// WriteJSON serialises the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	dj := datasetJSON{}
	for _, b := range d.Beacons {
		dj.Beacons = append(dj.Beacons, b.String())
	}
	for _, s := range d.Samples {
		sj := sampleJSON{Room: s.Room, AtSeconds: s.At.Seconds(), Distances: map[string]float64{}}
		for id, v := range s.Distances {
			sj.Distances[id.String()] = v
		}
		dj.Samples = append(dj.Samples, sj)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dj)
}

// ReadJSON deserialises a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var dj datasetJSON
	if err := json.NewDecoder(r).Decode(&dj); err != nil {
		return nil, fmt.Errorf("fingerprint: decode: %w", err)
	}
	d := &Dataset{}
	for _, s := range dj.Beacons {
		id, err := parseBeaconID(s)
		if err != nil {
			return nil, err
		}
		d.Beacons = append(d.Beacons, id)
	}
	for _, sj := range dj.Samples {
		s := Sample{
			Room:      sj.Room,
			At:        time.Duration(sj.AtSeconds * float64(time.Second)),
			Distances: map[ibeacon.BeaconID]float64{},
		}
		for key, v := range sj.Distances {
			id, err := parseBeaconID(key)
			if err != nil {
				return nil, err
			}
			s.Distances[id] = v
		}
		d.Samples = append(d.Samples, s)
	}
	return d, nil
}

// parseBeaconID parses the "UUID/major/minor" form of BeaconID.String.
func parseBeaconID(s string) (ibeacon.BeaconID, error) {
	id, err := ibeacon.ParseBeaconID(s)
	if err != nil {
		return id, fmt.Errorf("fingerprint: %w", err)
	}
	return id, nil
}
