// Package stripe provides the key → lock-stripe mapping shared by the
// lock-striped server components (the store's observation shards, the
// occupancy tracker's device shards). Keeping the hash in one place
// means the layers cannot silently drift apart in how they coalesce
// same-device runs.
package stripe

// Index maps key onto [0, n) with FNV-1a. n must be a power of two.
func Index(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h) & (n - 1)
}
