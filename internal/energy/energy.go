// Package energy implements the mobile-device energy model of Section
// VII: a component-level power accounting meter over the handset battery,
// the application power profile (BLE scanning, CPU, Wi-Fi vs
// Bluetooth-relay reporting), and the periodic battery logger standing in
// for the paper's measurement app ("basically a background service that
// logs the battery status in a very energy efficient way").
//
// The default profile is calibrated so the simulated Galaxy S3 Mini
// matches the paper's headline numbers: ≈10 h battery life with the app
// reporting over Wi-Fi, and ≈15% total energy saving when reporting over
// the Bluetooth relay instead.
package energy

import (
	"fmt"
	"sort"
	"time"

	"occusim/internal/device"
)

// Meter integrates energy drawn from one battery, attributed to named
// components.
type Meter struct {
	battery     device.Battery
	usedJ       float64
	byComponent map[string]*float64
}

// NewMeter builds a meter over the battery.
func NewMeter(b device.Battery) *Meter {
	return &Meter{battery: b, byComponent: map[string]*float64{}}
}

// Component is a resolved attribution handle: callers that draw from the
// same component every scan cycle resolve the name once and skip the
// map lookup per draw.
type Component struct {
	m *Meter
	j *float64
}

// Component returns the drawing handle for the named component.
func (m *Meter) Component(name string) Component {
	return Component{m: m, j: m.bucket(name)}
}

func (m *Meter) bucket(component string) *float64 {
	p := m.byComponent[component]
	if p == nil {
		p = new(float64)
		m.byComponent[component] = p
	}
	return p
}

// Draw consumes powerMW for dur, attributed to the component. Negative
// power or duration is rejected.
func (c Component) Draw(powerMW float64, dur time.Duration) error {
	if powerMW < 0 {
		return fmt.Errorf("energy: negative power %v mW", powerMW)
	}
	if dur < 0 {
		return fmt.Errorf("energy: negative duration %v", dur)
	}
	j := powerMW / 1000 * dur.Seconds()
	c.m.usedJ += j
	*c.j += j
	return nil
}

// DrawEnergy consumes a fixed energy in joules (e.g. one report burst).
func (c Component) DrawEnergy(joules float64) error {
	if joules < 0 {
		return fmt.Errorf("energy: negative energy %v J", joules)
	}
	c.m.usedJ += joules
	*c.j += joules
	return nil
}

// Draw consumes powerMW for dur, attributed to component. Negative power
// or duration is rejected.
func (m *Meter) Draw(component string, powerMW float64, dur time.Duration) error {
	return m.Component(component).Draw(powerMW, dur)
}

// DrawEnergy consumes a fixed energy in joules (e.g. one report burst).
func (m *Meter) DrawEnergy(component string, joules float64) error {
	return m.Component(component).DrawEnergy(joules)
}

// UsedJ returns the total energy consumed.
func (m *Meter) UsedJ() float64 { return m.usedJ }

// CapacityJ returns the battery's full capacity.
func (m *Meter) CapacityJ() float64 { return m.battery.EnergyJ() }

// RemainingJ returns the energy left (never negative).
func (m *Meter) RemainingJ() float64 {
	r := m.CapacityJ() - m.usedJ
	if r < 0 {
		return 0
	}
	return r
}

// Level returns the battery level in [0, 1].
func (m *Meter) Level() float64 {
	return m.RemainingJ() / m.CapacityJ()
}

// Depleted reports whether the battery is empty.
func (m *Meter) Depleted() bool { return m.RemainingJ() == 0 }

// ByComponent returns a copy of the per-component energy attribution.
func (m *Meter) ByComponent() map[string]float64 {
	out := make(map[string]float64, len(m.byComponent))
	for k, v := range m.byComponent {
		out[k] = *v
	}
	return out
}

// Components returns the component names, sorted.
func (m *Meter) Components() []string {
	out := make([]string, 0, len(m.byComponent))
	for k := range m.byComponent {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Uplink selects the reporting channel of Section VII.
type Uplink int

const (
	// WiFi posts observations directly to the BMS over HTTP; the Wi-Fi
	// radio must stay associated.
	WiFi Uplink = iota
	// Bluetooth opens a BLE connection to the beacon board, which relays
	// to the BMS; the Wi-Fi radio can stay off.
	Bluetooth
)

// String implements fmt.Stringer.
func (u Uplink) String() string {
	switch u {
	case WiFi:
		return "wifi"
	case Bluetooth:
		return "bluetooth"
	default:
		return fmt.Sprintf("uplink(%d)", int(u))
	}
}

// AppProfile is the power profile of the occupancy app on one handset.
// All powers in milliwatts, energies in joules.
type AppProfile struct {
	// BasePhoneMW is everything unrelated to the app: standby radio,
	// background OS work and the usage mix of the owner. It dominates
	// the battery budget, as on real phones.
	BasePhoneMW float64
	// BLEScanMW is the marginal cost of continuous BLE scanning.
	BLEScanMW float64
	// CPUPerCycleJ is the processing cost of handling one scan cycle
	// (parsing, filtering, bookkeeping).
	CPUPerCycleJ float64
	// WiFiIdleMW keeps the Wi-Fi radio associated (paid whenever the
	// Wi-Fi uplink is selected, even between reports).
	WiFiIdleMW float64
	// WiFiReportJ is the energy of one HTTP POST: transmit burst plus
	// the radio tail while the adapter ramps down.
	WiFiReportJ float64
	// BTReportJ is the energy of one report over a fresh BLE connection
	// to the beacon board (connection establishment, GATT write,
	// teardown, CPU wake).
	BTReportJ float64
}

// DefaultAppProfile returns the calibrated Galaxy S3 Mini profile.
//
// Arithmetic at a 5 s report period: Wi-Fi total = 380 (base) + 45 (scan)
// + 35 (Wi-Fi idle) + 0.55 J / 5 s = 110 → 570 mW, which drains the
// 20.5 kJ battery in ≈10.0 h. Bluetooth total = 380 + 45 + 0.30 J / 5 s
// = 60 → 485 mW (≈11.7 h), a ≈15% saving, matching Section VII.
func DefaultAppProfile() AppProfile {
	return AppProfile{
		BasePhoneMW:  380,
		BLEScanMW:    45,
		CPUPerCycleJ: 0.015,
		WiFiIdleMW:   35,
		WiFiReportJ:  0.55,
		BTReportJ:    0.30,
	}
}

// Validate reports the first nonsensical value, or nil.
func (p AppProfile) Validate() error {
	fields := []struct {
		name string
		v    float64
	}{
		{"BasePhoneMW", p.BasePhoneMW},
		{"BLEScanMW", p.BLEScanMW},
		{"CPUPerCycleJ", p.CPUPerCycleJ},
		{"WiFiIdleMW", p.WiFiIdleMW},
		{"WiFiReportJ", p.WiFiReportJ},
		{"BTReportJ", p.BTReportJ},
	}
	for _, f := range fields {
		if f.v < 0 {
			return fmt.Errorf("energy: %s must be non-negative, got %v", f.name, f.v)
		}
	}
	return nil
}

// ReportEnergyJ returns the per-report energy of the chosen uplink.
func (p AppProfile) ReportEnergyJ(u Uplink) float64 {
	if u == Bluetooth {
		return p.BTReportJ
	}
	return p.WiFiReportJ
}

// ContinuousPowerMW returns the standing power of the app (and phone)
// with the chosen uplink, excluding per-event costs.
func (p AppProfile) ContinuousPowerMW(u Uplink) float64 {
	total := p.BasePhoneMW + p.BLEScanMW
	if u == WiFi {
		total += p.WiFiIdleMW
	}
	return total
}

// LogEntry is one battery-level sample.
type LogEntry struct {
	At    time.Duration
	Level float64
}

// Logger periodically samples a meter's battery level, standing in for
// the paper's measurement application.
type Logger struct {
	meter   *Meter
	entries []LogEntry
}

// NewLogger builds a logger over the meter.
func NewLogger(m *Meter) *Logger { return &Logger{meter: m} }

// Sample records the current level at time at.
func (l *Logger) Sample(at time.Duration) {
	l.entries = append(l.entries, LogEntry{At: at, Level: l.meter.Level()})
}

// Entries returns a copy of the log.
func (l *Logger) Entries() []LogEntry { return append([]LogEntry(nil), l.entries...) }

// LifetimeEstimate extrapolates the time to empty from the first and
// last log entries. ok is false with fewer than two entries or no
// measurable drain.
func (l *Logger) LifetimeEstimate() (time.Duration, bool) {
	if len(l.entries) < 2 {
		return 0, false
	}
	first, last := l.entries[0], l.entries[len(l.entries)-1]
	drop := first.Level - last.Level
	if drop <= 0 || last.At <= first.At {
		return 0, false
	}
	perSecond := drop / (last.At - first.At).Seconds()
	secs := first.Level / perSecond
	return time.Duration(secs * float64(time.Second)), true
}
