package energy

import (
	"math"
	"strings"
	"testing"
	"time"

	"occusim/internal/device"
)

func TestMeterDrawAccounting(t *testing.T) {
	m := NewMeter(device.Battery{CapacitymAh: 1000, VoltageV: 3.7}) // 13320 J
	if err := m.Draw("radio", 1000, time.Hour); err != nil {        // 1 W for 1 h = 3600 J
		t.Fatal(err)
	}
	if math.Abs(m.UsedJ()-3600) > 1e-9 {
		t.Fatalf("used = %v", m.UsedJ())
	}
	if math.Abs(m.Level()-(13320.0-3600.0)/13320.0) > 1e-12 {
		t.Fatalf("level = %v", m.Level())
	}
	if err := m.DrawEnergy("cpu", 100); err != nil {
		t.Fatal(err)
	}
	by := m.ByComponent()
	if by["radio"] != 3600 || by["cpu"] != 100 {
		t.Fatalf("byComponent = %v", by)
	}
	comps := m.Components()
	if len(comps) != 2 || comps[0] != "cpu" {
		t.Fatalf("components = %v", comps)
	}
}

func TestMeterErrors(t *testing.T) {
	m := NewMeter(device.GalaxyS3Mini().Battery)
	if err := m.Draw("x", -1, time.Second); err == nil {
		t.Error("negative power should fail")
	}
	if err := m.Draw("x", 1, -time.Second); err == nil {
		t.Error("negative duration should fail")
	}
	if err := m.DrawEnergy("x", -1); err == nil {
		t.Error("negative energy should fail")
	}
}

func TestMeterDepletion(t *testing.T) {
	m := NewMeter(device.Battery{CapacitymAh: 1, VoltageV: 1}) // 3.6 J
	if m.Depleted() {
		t.Fatal("fresh battery depleted")
	}
	_ = m.DrawEnergy("x", 10)
	if !m.Depleted() || m.RemainingJ() != 0 || m.Level() != 0 {
		t.Fatalf("over-drain handling: remaining=%v level=%v", m.RemainingJ(), m.Level())
	}
}

func TestDefaultAppProfileCalibration(t *testing.T) {
	p := DefaultAppProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	const reportPeriod = 5.0 // seconds
	wifiMW := p.ContinuousPowerMW(WiFi) + p.WiFiReportJ/reportPeriod*1000
	btMW := p.ContinuousPowerMW(Bluetooth) + p.BTReportJ/reportPeriod*1000

	battery := device.GalaxyS3Mini().Battery.EnergyJ()
	wifiHours := battery / wifiMW * 1000 / 3600
	btHours := battery / btMW * 1000 / 3600

	// Paper: ≈10 h lifetime with the app.
	if wifiHours < 9 || wifiHours > 11 {
		t.Errorf("Wi-Fi lifetime = %.2f h, want ≈10", wifiHours)
	}
	// Paper: ≈15% energy saving with the Bluetooth architecture.
	saving := (wifiMW - btMW) / wifiMW
	if saving < 0.12 || saving > 0.18 {
		t.Errorf("BT saving = %.1f%%, want ≈15%%", saving*100)
	}
	if btHours <= wifiHours {
		t.Error("BT lifetime should exceed Wi-Fi lifetime")
	}
}

func TestAppProfileValidate(t *testing.T) {
	p := DefaultAppProfile()
	p.BLEScanMW = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative field should fail")
	}
}

func TestReportEnergySelectsUplink(t *testing.T) {
	p := DefaultAppProfile()
	if p.ReportEnergyJ(WiFi) != p.WiFiReportJ {
		t.Error("wifi report energy wrong")
	}
	if p.ReportEnergyJ(Bluetooth) != p.BTReportJ {
		t.Error("bt report energy wrong")
	}
	if p.ReportEnergyJ(WiFi) <= p.ReportEnergyJ(Bluetooth) {
		t.Error("wifi report must cost more than bluetooth")
	}
}

func TestContinuousPowerIncludesWiFiIdleOnlyOnWiFi(t *testing.T) {
	p := DefaultAppProfile()
	if p.ContinuousPowerMW(WiFi)-p.ContinuousPowerMW(Bluetooth) != p.WiFiIdleMW {
		t.Fatal("Wi-Fi idle attribution wrong")
	}
}

func TestUplinkString(t *testing.T) {
	if WiFi.String() != "wifi" || Bluetooth.String() != "bluetooth" {
		t.Fatal("bad uplink strings")
	}
	if !strings.Contains(Uplink(9).String(), "9") {
		t.Fatal("unknown uplink should include value")
	}
}

func TestLogger(t *testing.T) {
	m := NewMeter(device.Battery{CapacitymAh: 1000, VoltageV: 3.6}) // 12960 J
	l := NewLogger(m)
	l.Sample(0)
	_ = m.Draw("app", 3600, time.Hour) // burn 1/1th? 3.6W*3600s = 12960 J... burn exactly all
	l.Sample(time.Hour)
	entries := l.Entries()
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Level != 1 || entries[1].Level != 0 {
		t.Fatalf("levels = %v", entries)
	}
}

func TestLifetimeEstimate(t *testing.T) {
	m := NewMeter(device.Battery{CapacitymAh: 1000, VoltageV: 3.6}) // 12960 J
	l := NewLogger(m)
	l.Sample(0)
	// Draw 10% over one hour → lifetime should extrapolate to 10 h.
	_ = m.DrawEnergy("app", 1296)
	l.Sample(time.Hour)
	life, ok := l.LifetimeEstimate()
	if !ok {
		t.Fatal("estimate unavailable")
	}
	if math.Abs(life.Hours()-10) > 0.01 {
		t.Fatalf("lifetime = %v, want 10 h", life)
	}
}

func TestLifetimeEstimateUnavailable(t *testing.T) {
	m := NewMeter(device.GalaxyS3Mini().Battery)
	l := NewLogger(m)
	if _, ok := l.LifetimeEstimate(); ok {
		t.Fatal("no entries should give no estimate")
	}
	l.Sample(0)
	l.Sample(time.Hour) // no drain
	if _, ok := l.LifetimeEstimate(); ok {
		t.Fatal("zero drain should give no estimate")
	}
}
