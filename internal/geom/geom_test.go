package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
}

func TestDistAndNorm(t *testing.T) {
	if got := Pt(3, 4).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := Pt(1, 1).Dist(Pt(4, 5)); got != 5 {
		t.Errorf("Dist = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestUnit(t *testing.T) {
	u := Pt(3, 4).Unit()
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if got := Pt(0, 0).Unit(); got != Pt(0, 0) {
		t.Errorf("Unit of zero = %v", got)
	}
}

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if s.Length() != 5 {
		t.Errorf("Length = %v", s.Length())
	}
	if s.Midpoint() != Pt(1.5, 2) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, u Segment
		want bool
	}{
		// Plain crossing.
		{Seg(Pt(0, 0), Pt(2, 2)), Seg(Pt(0, 2), Pt(2, 0)), true},
		// Parallel, separated.
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(0, 1), Pt(1, 1)), false},
		// Touching at an endpoint.
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(1, 1), Pt(2, 0)), true},
		// Collinear overlapping.
		{Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0), Pt(3, 0)), true},
		// Collinear disjoint.
		{Seg(Pt(0, 0), Pt(1, 0)), Seg(Pt(2, 0), Pt(3, 0)), false},
		// T-junction.
		{Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, -1), Pt(1, 0)), true},
		// Near miss.
		{Seg(Pt(0, 0), Pt(2, 0)), Seg(Pt(1, 0.001), Pt(1, 1)), false},
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.u); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		// Symmetry.
		if got := c.u.Intersects(c.s); got != c.want {
			t.Errorf("case %d: symmetric Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestSegmentDistToPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	if got := s.DistToPoint(Pt(5, 3)); got != 3 {
		t.Errorf("perpendicular dist = %v", got)
	}
	if got := s.DistToPoint(Pt(-4, 3)); got != 5 {
		t.Errorf("endpoint dist = %v", got)
	}
	// Degenerate segment.
	d := Seg(Pt(1, 1), Pt(1, 1))
	if got := d.DistToPoint(Pt(4, 5)); got != 5 {
		t.Errorf("degenerate dist = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Pt(4, 6), Pt(1, 2)) // corners given out of order
	if r.Min != Pt(1, 2) || r.Max != Pt(4, 6) {
		t.Fatalf("normalisation failed: %+v", r)
	}
	if r.Width() != 3 || r.Height() != 4 || r.Area() != 12 {
		t.Errorf("dims: w=%v h=%v a=%v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(2.5, 4) {
		t.Errorf("Center = %v", r.Center())
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 2))
	if !r.Contains(Pt(1, 1)) || !r.Contains(Pt(0, 0)) || !r.Contains(Pt(2, 2)) {
		t.Error("Contains should include interior and border")
	}
	if r.Contains(Pt(2.1, 1)) {
		t.Error("Contains accepted outside point")
	}
	if r.ContainsStrict(Pt(0, 1)) {
		t.Error("ContainsStrict accepted border point")
	}
	if !r.ContainsStrict(Pt(1, 1)) {
		t.Error("ContainsStrict rejected interior point")
	}
}

func TestRectEdgesFormClosedLoop(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(3, 2))
	edges := r.Edges()
	var total float64
	for _, e := range edges {
		total += e.Length()
	}
	if total != 2*(3+2) {
		t.Errorf("perimeter = %v", total)
	}
	for i := range edges {
		next := edges[(i+1)%len(edges)]
		if edges[i].B != next.A {
			t.Errorf("edges %d and %d not chained", i, (i+1)%len(edges))
		}
	}
}

func TestRectClamp(t *testing.T) {
	r := NewRect(Pt(0, 0), Pt(2, 2))
	if got := r.Clamp(Pt(5, -1)); got != Pt(2, 0) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Pt(1, 1)); got != Pt(1, 1) {
		t.Errorf("Clamp of interior = %v", got)
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Pt(0, 0), Pt(2, 2))
	b := NewRect(Pt(1, 1), Pt(3, 3))
	c := NewRect(Pt(2, 0), Pt(4, 2)) // touches a at x=2
	d := NewRect(Pt(5, 5), Pt(6, 6))
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects should intersect")
	}
	if !a.Intersects(c) {
		t.Error("touching rects should intersect")
	}
	if a.Intersects(d) {
		t.Error("distant rects should not intersect")
	}
}

func TestPolygonContains(t *testing.T) {
	// L-shaped room.
	l := Polygon{Vertices: []Point{
		Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4),
	}}
	in := []Point{Pt(1, 1), Pt(3, 1), Pt(1, 3)}
	out := []Point{Pt(3, 3), Pt(5, 1), Pt(-1, -1)}
	for _, p := range in {
		if !l.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range out {
		if l.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestPolygonDegenerate(t *testing.T) {
	if (Polygon{Vertices: []Point{Pt(0, 0), Pt(1, 1)}}).Contains(Pt(0.5, 0.5)) {
		t.Error("2-vertex polygon cannot contain points")
	}
	if got := (Polygon{}).Area(); got != 0 {
		t.Errorf("empty polygon area = %v", got)
	}
	if (Polygon{Vertices: []Point{Pt(0, 0)}}).Edges() != nil {
		t.Error("single vertex polygon should have no edges")
	}
}

func TestPolygonArea(t *testing.T) {
	sq := Polygon{Vertices: []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}}
	if got := sq.Area(); got != 4 {
		t.Errorf("square area = %v", got)
	}
	l := Polygon{Vertices: []Point{
		Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4),
	}}
	if got := l.Area(); got != 12 {
		t.Errorf("L area = %v, want 12", got)
	}
}

func TestPolygonEdges(t *testing.T) {
	sq := Polygon{Vertices: []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}}
	edges := sq.Edges()
	if len(edges) != 4 {
		t.Fatalf("edge count = %d", len(edges))
	}
	if edges[3].B != edges[0].A {
		t.Error("polygon edges not closed")
	}
}

func TestCrossingCount(t *testing.T) {
	walls := []Segment{
		Seg(Pt(2, 0), Pt(2, 4)), // vertical wall at x=2
		Seg(Pt(4, 0), Pt(4, 4)), // vertical wall at x=4
	}
	if got := CrossingCount(Pt(0, 2), Pt(1, 2), walls); got != 0 {
		t.Errorf("no-wall path crossings = %d", got)
	}
	if got := CrossingCount(Pt(0, 2), Pt(3, 2), walls); got != 1 {
		t.Errorf("one-wall path crossings = %d", got)
	}
	if got := CrossingCount(Pt(0, 2), Pt(5, 2), walls); got != 2 {
		t.Errorf("two-wall path crossings = %d", got)
	}
}

// Property: distance is symmetric and satisfies identity.
func TestQuickDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return math.Abs(a.Dist(b)-b.Dist(a)) < 1e-9 && a.Dist(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyBad(ax, ay, bx, by, cx, cy) {
			return true
		}
		a, b, c := Pt(ax, ay), Pt(bx, by), Pt(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Rect.Clamp output is always contained in the rect.
func TestQuickClampContained(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		if anyBad(ax, ay, bx, by, px, py) {
			return true
		}
		r := NewRect(Pt(ax, ay), Pt(bx, by))
		return r.Contains(r.Clamp(Pt(px, py)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a rectangle contains its own centre and corners.
func TestQuickRectContainsCenter(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		r := NewRect(Pt(ax, ay), Pt(bx, by))
		return r.Contains(r.Center()) && r.Contains(r.Min) && r.Contains(r.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func anyBad(vals ...float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e15 {
			return true
		}
	}
	return false
}
