package geom

import "math"

// SegmentIndex is a uniform-grid spatial index over a fixed set of
// segments, built once and queried many times. The radio model uses it so
// a wall-crossing count tests only the walls near the query path instead
// of every wall in the building.
//
// The index is immutable after construction and safe for concurrent
// queries.
type SegmentIndex struct {
	segs []Segment

	minX, minY float64
	cell       float64 // cell edge length, metres
	nx, ny     int
	// cells[cy*nx+cx] lists the indices of segments whose bounding box
	// overlaps that cell.
	cells [][]int32
}

// indexCandidateCap bounds the stack-allocated dedupe buffer used during
// queries; queries that would overflow it fall back to a linear scan.
const indexCandidateCap = 128

// NewSegmentIndex builds an index over segs with the given cell size.
// cell <= 0 selects a default of 2 m. A nil or empty segment set yields
// an index whose queries always return zero.
func NewSegmentIndex(segs []Segment, cell float64) *SegmentIndex {
	if cell <= 0 {
		cell = 2
	}
	idx := &SegmentIndex{segs: segs, cell: cell}
	if len(segs) == 0 {
		return idx
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, s := range segs {
		minX = math.Min(minX, math.Min(s.A.X, s.B.X))
		minY = math.Min(minY, math.Min(s.A.Y, s.B.Y))
		maxX = math.Max(maxX, math.Max(s.A.X, s.B.X))
		maxY = math.Max(maxY, math.Max(s.A.Y, s.B.Y))
	}
	idx.minX, idx.minY = minX, minY
	idx.nx = int((maxX-minX)/cell) + 1
	idx.ny = int((maxY-minY)/cell) + 1
	const maxCellsPerAxis = 512
	if idx.nx > maxCellsPerAxis {
		idx.nx = maxCellsPerAxis
		idx.cell = math.Max(idx.cell, (maxX-minX)/float64(maxCellsPerAxis-1))
	}
	if idx.ny > maxCellsPerAxis {
		idx.ny = maxCellsPerAxis
		idx.cell = math.Max(idx.cell, (maxY-minY)/float64(maxCellsPerAxis-1))
	}
	idx.cells = make([][]int32, idx.nx*idx.ny)
	for i, s := range segs {
		x0, y0 := idx.cellOf(math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y))
		x1, y1 := idx.cellOf(math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y))
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				c := cy*idx.nx + cx
				idx.cells[c] = append(idx.cells[c], int32(i))
			}
		}
	}
	return idx
}

// cellOf maps a coordinate to a clamped cell coordinate.
func (idx *SegmentIndex) cellOf(x, y float64) (int, int) {
	cx := int((x - idx.minX) / idx.cell)
	cy := int((y - idx.minY) / idx.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= idx.nx {
		cx = idx.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= idx.ny {
		cy = idx.ny - 1
	}
	return cx, cy
}

// Len returns the number of indexed segments.
func (idx *SegmentIndex) Len() int { return len(idx.segs) }

// CrossingCount returns how many indexed segments the segment from a to b
// crosses. It is equivalent to geom.CrossingCount over the indexed set.
func (idx *SegmentIndex) CrossingCount(a, b Point) int {
	if len(idx.segs) == 0 {
		return 0
	}
	// Every indexed segment lives inside the grid, so any intersection
	// point lies in a grid cell overlapped by the query's bounding box;
	// visiting those cells finds every candidate.
	x0, y0 := idx.cellOf(math.Min(a.X, b.X), math.Min(a.Y, b.Y))
	x1, y1 := idx.cellOf(math.Max(a.X, b.X), math.Max(a.Y, b.Y))
	path := Seg(a, b)

	// Collect candidate segment ids into a stack buffer, deduplicating
	// (a segment registered in several cells must be tested once). The
	// candidate sets are small for realistic floor plans; if the buffer
	// would overflow, fall back to the exact linear scan.
	var buf [indexCandidateCap]int32
	cand := buf[:0]
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, id := range idx.cells[cy*idx.nx+cx] {
				seen := false
				for _, c := range cand {
					if c == id {
						seen = true
						break
					}
				}
				if seen {
					continue
				}
				if len(cand) == indexCandidateCap {
					return CrossingCount(a, b, idx.segs)
				}
				cand = append(cand, id)
			}
		}
	}
	n := 0
	for _, id := range cand {
		if path.Intersects(idx.segs[id]) {
			n++
		}
	}
	return n
}
