// Package geom provides the 2-D geometry primitives used by the building
// model, the mobility models and the radio propagation model: points,
// segments, rectangles and polygons, with the operations the simulator
// needs (distance, containment, segment intersection and wall-crossing
// counts).
//
// The coordinate system is metres on a single floor, x growing east and y
// growing north.
package geom

import (
	"fmt"
	"math"
)

// Point is a position on the floor plan, in metres.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Lerp linearly interpolates from p to q; t = 0 gives p, t = 1 gives q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Unit returns the unit vector in the direction of p; the zero vector is
// returned unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// String renders the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Segment is a straight line segment between two points; the building
// model uses segments for walls.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Length returns the segment length.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the middle of the segment.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// orientation classifies the turn a→b→c: +1 counter-clockwise, -1
// clockwise, 0 collinear (within eps).
func orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	const eps = 1e-12
	switch {
	case v > eps:
		return 1
	case v < -eps:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether collinear point p lies on segment s.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X)-1e-12 <= p.X && p.X <= math.Max(s.A.X, s.B.X)+1e-12 &&
		math.Min(s.A.Y, s.B.Y)-1e-12 <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)+1e-12
}

// Intersects reports whether segments s and t share at least one point.
func (s Segment) Intersects(t Segment) bool {
	o1 := orientation(s.A, s.B, t.A)
	o2 := orientation(s.A, s.B, t.B)
	o3 := orientation(t.A, t.B, s.A)
	o4 := orientation(t.A, t.B, s.B)

	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear special cases.
	if o1 == 0 && onSegment(s, t.A) {
		return true
	}
	if o2 == 0 && onSegment(s, t.B) {
		return true
	}
	if o3 == 0 && onSegment(t, s.A) {
		return true
	}
	if o4 == 0 && onSegment(t, s.B) {
		return true
	}
	return false
}

// DistToPoint returns the shortest distance from point p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	ab := s.B.Sub(s.A)
	denom := ab.Dot(ab)
	if denom == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(ab) / denom
	t = math.Max(0, math.Min(1, t))
	return p.Dist(s.A.Add(ab.Scale(t)))
}

// Rect is an axis-aligned rectangle, the footprint of a simple room.
// Min is the south-west corner, Max the north-east corner.
type Rect struct {
	Min, Max Point
}

// NewRect builds a Rect from any two opposite corners, normalising the
// order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Width returns the extent along x.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the extent along y.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the centroid.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside the rectangle or on its border.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsStrict reports whether p lies strictly inside the rectangle.
func (r Rect) ContainsStrict(p Point) bool {
	return p.X > r.Min.X && p.X < r.Max.X && p.Y > r.Min.Y && p.Y < r.Max.Y
}

// Edges returns the four boundary segments in counter-clockwise order
// starting from the bottom edge.
func (r Rect) Edges() [4]Segment {
	bl := r.Min
	br := Point{r.Max.X, r.Min.Y}
	tr := r.Max
	tl := Point{r.Min.X, r.Max.Y}
	return [4]Segment{Seg(bl, br), Seg(br, tr), Seg(tr, tl), Seg(tl, bl)}
}

// Clamp returns the closest point to p inside the rectangle.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Intersects reports whether two rectangles overlap (borders touching
// counts as overlap).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Polygon is a simple polygon given by its vertices in order. The building
// model uses polygons for non-rectangular rooms (e.g. an L-shaped living
// room).
type Polygon struct {
	Vertices []Point
}

// Contains reports whether p is inside the polygon using the ray-casting
// rule; points exactly on an edge may land on either side, which is fine
// for the simulator (rooms abut wall centre-lines).
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// Area returns the absolute area of the polygon (shoelace formula).
func (pg Polygon) Area() float64 {
	n := len(pg.Vertices)
	if n < 3 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += pg.Vertices[i].Cross(pg.Vertices[j])
	}
	return math.Abs(sum) / 2
}

// Edges returns the boundary segments of the polygon.
func (pg Polygon) Edges() []Segment {
	n := len(pg.Vertices)
	if n < 2 {
		return nil
	}
	segs := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		segs = append(segs, Seg(pg.Vertices[i], pg.Vertices[(i+1)%n]))
	}
	return segs
}

// CrossingCount returns how many of the walls the segment from a to b
// crosses. The radio model charges a per-wall attenuation based on this
// count.
func CrossingCount(a, b Point, walls []Segment) int {
	path := Seg(a, b)
	n := 0
	for _, w := range walls {
		if path.Intersects(w) {
			n++
		}
	}
	return n
}
